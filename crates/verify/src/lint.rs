//! A source-level lint pass for concurrency rules clippy cannot express.
//!
//! Three rules, each encoding a bug class this workspace has actually
//! faced or structurally fears:
//!
//! * **TC-L001** — a mutex guard held across a blocking call (`.recv()`,
//!   `.recv_timeout(..)`, thread `.join()`) in the concurrency crates.
//!   Blocking while holding a lock turns slow progress into deadlock the
//!   moment the unblocking party needs that lock. `Condvar::wait` is
//!   exempt: it releases the guard atomically — that pairing is the one
//!   sanctioned way to block under a lock.
//! * **TC-L002** — acquiring a second lock while one is already held (or
//!   two `.lock()` calls in one statement) in the concurrency crates: the
//!   exact shape of the PR 2 work-stealing deadlock, where a worker held
//!   its own deque lock while locking a victim's.
//! * **TC-L003** — a bare blocking `.recv()` anywhere in workspace library
//!   sources outside `run_guarded`: unguarded indefinite blocking is
//!   invisible to the deadlock watchdog.
//!
//! The scanner is deliberately syntactic: it strips comments and string
//! literals, groups the rest into brace-tracked logical statements, and
//! follows `let`-bound guards until their scope closes or they are
//! `drop`ped. False positives are silenced at the site with a
//! `// lint: allow(TC-Lxxx)` marker on the same line or the line above —
//! a visible, greppable waiver, unlike a config-file exclusion. Scanning
//! stops at the first `#[cfg(test)]` (test modules sit at the end of a
//! file in this workspace); `tests/` directories are never scanned.

use std::fmt;
use std::path::{Path, PathBuf};

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintFinding {
    /// Rule identifier (`"TC-L001"` …).
    pub rule: &'static str,
    /// File the finding is in (as given to the scanner).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// What the rule forbids, instantiated for this site.
    pub message: String,
}

impl fmt::Display for LintFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {} [{}]",
            self.file, self.line, self.message, self.rule
        )
    }
}

/// The verdict of a workspace scan.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// Every finding, in path order.
    pub findings: Vec<LintFinding>,
    /// Files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// Whether the scan found nothing.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for finding in &self.findings {
            writeln!(f, "{finding}")?;
        }
        writeln!(
            f,
            "tricount-lint: {} file(s), {} finding(s)",
            self.files_scanned,
            self.findings.len()
        )
    }
}

/// Which rule families apply to a file.
#[derive(Debug, Clone, Copy)]
pub struct LintScope {
    /// TC-L001/TC-L002 apply (the file is in a concurrency crate).
    pub concurrency: bool,
}

/// Replaces comments, string/char literals with spaces (newlines kept, so
/// line numbers survive), and records `lint: allow(..)` markers per line.
fn sanitize(src: &str) -> (String, Vec<Vec<String>>) {
    let bytes = src.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut allows: Vec<Vec<String>> = vec![Vec::new()];
    let mut line = 0usize;
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        if c == b'\n' {
            out.push(b'\n');
            allows.push(Vec::new());
            line += 1;
            i += 1;
        } else if c == b'/' && bytes.get(i + 1) == Some(&b'/') {
            let end = src[i..].find('\n').map_or(bytes.len(), |o| i + o);
            let comment = &src[i..end];
            if let Some(pos) = comment.find("lint: allow(") {
                let rest = &comment[pos + "lint: allow(".len()..];
                if let Some(close) = rest.find(')') {
                    allows[line].push(rest[..close].trim().to_string());
                }
            }
            out.resize(out.len() + (end - i), b' ');
            i = end;
        } else if c == b'/' && bytes.get(i + 1) == Some(&b'*') {
            let end = src[i + 2..]
                .find("*/")
                .map_or(bytes.len(), |o| i + 2 + o + 2);
            for &b in &bytes[i..end] {
                if b == b'\n' {
                    out.push(b'\n');
                    allows.push(Vec::new());
                    line += 1;
                } else {
                    out.push(b' ');
                }
            }
            i = end;
        } else if c == b'"' {
            // String literal (escapes honoured); raw strings are close
            // enough under this rule for lint purposes.
            out.push(b' ');
            i += 1;
            while i < bytes.len() {
                match bytes[i] {
                    b'\\' => {
                        out.push(b' ');
                        if i + 1 < bytes.len() {
                            out.push(if bytes[i + 1] == b'\n' { b'\n' } else { b' ' });
                            if bytes[i + 1] == b'\n' {
                                allows.push(Vec::new());
                                line += 1;
                            }
                        }
                        i += 2;
                    }
                    b'"' => {
                        out.push(b' ');
                        i += 1;
                        break;
                    }
                    b'\n' => {
                        out.push(b'\n');
                        allows.push(Vec::new());
                        line += 1;
                        i += 1;
                    }
                    _ => {
                        out.push(b' ');
                        i += 1;
                    }
                }
            }
        } else if c == b'\'' {
            // Char literal if it closes within a few bytes ('a', '\n',
            // '\u{..}' is longer but contains no braces we care about);
            // otherwise a lifetime — leave it.
            let lit_end = (i + 2..(i + 5).min(bytes.len())).find(|&j| bytes[j] == b'\'');
            if bytes.get(i + 1) == Some(&b'\\') || lit_end == Some(i + 2) {
                let end = (lit_end.unwrap_or(i + 1) + 1).min(bytes.len());
                out.resize(out.len() + (end - i), b' ');
                i = end;
            } else {
                out.push(c);
                i += 1;
            }
        } else {
            out.push(c);
            i += 1;
        }
    }
    (String::from_utf8_lossy(&out).into_owned(), allows)
}

struct Guard {
    name: String,
    depth: usize,
}

/// Lints one file's source text.
pub fn lint_source(file: &str, src: &str, scope: LintScope) -> Vec<LintFinding> {
    let scan_end = src.find("#[cfg(test)]").unwrap_or(src.len());
    let (clean, allows) = sanitize(&src[..scan_end]);
    // A waiver anywhere on the statement's lines (or the line above it)
    // counts: multi-line method chains carry the marker on the `.lock()`
    // line, not the `let` line.
    let allowed = |first: usize, last: usize, rule: &str| -> bool {
        (first.saturating_sub(1)..=last)
            .any(|l| allows.get(l).is_some_and(|v| v.iter().any(|r| r == rule)))
    };

    let mut findings = Vec::new();
    let mut guards: Vec<Guard> = Vec::new();
    let mut fns: Vec<(String, usize)> = Vec::new();
    let mut depth = 0usize;
    let mut stmt = String::new();
    let mut stmt_line = 0usize;
    let mut line = 0usize;
    let mut pending_fn: Option<String> = None;

    let flush = |stmt: &mut String,
                 stmt_line: usize,
                 end_line: usize,
                 depth: usize,
                 opens_block: bool,
                 guards: &mut Vec<Guard>,
                 fns: &[(String, usize)],
                 findings: &mut Vec<LintFinding>| {
        let s = stmt.trim();
        if s.is_empty() {
            stmt.clear();
            return;
        }
        let locks = s.matches(".lock(").count();
        let in_run_guarded = fns.iter().any(|(n, _)| n == "run_guarded");
        // A guard is born only when the chain after `.lock(` is nothing
        // but unwrap-family adapters: `let v = q.lock().unwrap().pop()`
        // binds the popped value — its guard is a temporary that dies at
        // the semicolon.
        let is_guard_let = s.starts_with("let ")
            && locks > 0
            && s[s.rfind(".lock(").unwrap_or(0)..]
                .split('.')
                .skip(2)
                .all(|piece| {
                    let ident: String = piece
                        .chars()
                        .take_while(|c| c.is_alphanumeric() || *c == '_')
                        .collect();
                    matches!(
                        ident.as_str(),
                        "unwrap" | "expect" | "unwrap_or_else" | "map_err"
                    )
                });
        let line_no = stmt_line + 1;

        if scope.concurrency {
            if locks >= 2 && !allowed(stmt_line, end_line, "TC-L002") {
                findings.push(LintFinding {
                    rule: "TC-L002",
                    file: file.to_string(),
                    line: line_no,
                    message: "two lock acquisitions in one statement".to_string(),
                });
            }
            if !guards.is_empty() && locks > 0 && !allowed(stmt_line, end_line, "TC-L002") {
                findings.push(LintFinding {
                    rule: "TC-L002",
                    file: file.to_string(),
                    line: line_no,
                    message: format!(
                        "lock acquired while guard `{}` is held",
                        guards[guards.len() - 1].name
                    ),
                });
            }
            if !guards.is_empty() && !s.contains(".wait(") {
                for blocking in [".recv()", ".recv_timeout(", ".join()"] {
                    if s.contains(blocking) && !allowed(stmt_line, end_line, "TC-L001") {
                        findings.push(LintFinding {
                            rule: "TC-L001",
                            file: file.to_string(),
                            line: line_no,
                            message: format!(
                                "blocking call `{blocking}` while guard `{}` is held",
                                guards[guards.len() - 1].name
                            ),
                        });
                    }
                }
            }
        }
        if s.contains(".recv()") && !in_run_guarded && !allowed(stmt_line, end_line, "TC-L003") {
            findings.push(LintFinding {
                rule: "TC-L003",
                file: file.to_string(),
                line: line_no,
                message: "bare blocking `.recv()` outside `run_guarded`".to_string(),
            });
        }
        if is_guard_let {
            let name = s
                .trim_start_matches("let ")
                .trim_start_matches("mut ")
                .split(|c: char| !c.is_alphanumeric() && c != '_')
                .next()
                .unwrap_or("")
                .to_string();
            guards.push(Guard { name, depth });
        } else if opens_block && locks > 0 && !allowed(stmt_line, end_line, "TC-L002") {
            // The statement was interrupted by `{` — a closure body, match
            // arm block, or `if let` — so its `.lock()` temporary is still
            // alive inside the block (temporaries live to the end of the
            // *statement*, not the fragment). This is the exact PR 2
            // shape: `q.lock()…pop_front().or_else(|| steal…)` keeps the
            // own-deque guard across every steal. Track it as an anonymous
            // guard scoped to the opened block.
            guards.push(Guard {
                name: "(lock temporary held across this block)".to_string(),
                depth: depth + 1,
            });
        }
        if s.starts_with("drop(") || s.contains(" drop(") {
            let inner = &s[s.find("drop(").map_or(0, |p| p + 5)..];
            let arg: String = inner
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            guards.retain(|g| g.name != arg);
        }
        stmt.clear();
    };

    for ch in clean.chars() {
        match ch {
            '\n' => {
                line += 1;
                stmt.push(' ');
            }
            '{' => {
                // A statement ending in `{` opens a scope; a `fn` header
                // registers the function for the run_guarded exemption.
                if let Some(pos) = stmt.find("fn ") {
                    let name: String = stmt[pos + 3..]
                        .chars()
                        .take_while(|c| c.is_alphanumeric() || *c == '_')
                        .collect();
                    if !name.is_empty() {
                        pending_fn = Some(name);
                    }
                }
                flush(
                    &mut stmt,
                    stmt_line,
                    line,
                    depth,
                    true,
                    &mut guards,
                    &fns,
                    &mut findings,
                );
                if let Some(name) = pending_fn.take() {
                    fns.push((name, depth));
                }
                depth += 1;
                stmt_line = line;
            }
            '}' => {
                flush(
                    &mut stmt,
                    stmt_line,
                    line,
                    depth,
                    false,
                    &mut guards,
                    &fns,
                    &mut findings,
                );
                depth = depth.saturating_sub(1);
                // A guard dies when its block closes (registered at body
                // depth); a fn leaves scope when depth returns to its
                // header's depth.
                guards.retain(|g| g.depth <= depth);
                fns.retain(|(_, d)| *d < depth);
                stmt_line = line;
            }
            ';' => {
                flush(
                    &mut stmt,
                    stmt_line,
                    line,
                    depth,
                    false,
                    &mut guards,
                    &fns,
                    &mut findings,
                );
                stmt_line = line;
            }
            _ => {
                if stmt.is_empty() && !ch.is_whitespace() {
                    stmt_line = line;
                }
                stmt.push(ch);
            }
        }
    }
    flush(
        &mut stmt,
        stmt_line,
        line,
        depth,
        false,
        &mut guards,
        &fns,
        &mut findings,
    );
    findings
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Lints every crate's `src/` tree under `root/crates` (integration
/// `tests/` directories are out of scope — they run under the watchdog
/// harness by construction).
pub fn lint_workspace(root: &Path) -> std::io::Result<LintReport> {
    let mut report = LintReport::default();
    let crates_dir = root.join("crates");
    let mut crates: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crates.sort();
    for krate in crates {
        let name = krate.file_name().and_then(|n| n.to_str()).unwrap_or("");
        let scope = LintScope {
            concurrency: matches!(name, "par" | "comm" | "net"),
        };
        let mut files = Vec::new();
        collect_rs(&krate.join("src"), &mut files);
        for path in files {
            let src = std::fs::read_to_string(&path)?;
            let label = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .display()
                .to_string();
            report.findings.extend(lint_source(&label, &src, scope));
            report.files_scanned += 1;
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    const CONC: LintScope = LintScope { concurrency: true };
    const PLAIN: LintScope = LintScope { concurrency: false };

    fn rules(src: &str, scope: LintScope) -> Vec<&'static str> {
        lint_source("t.rs", src, scope)
            .into_iter()
            .map(|f| f.rule)
            .collect()
    }

    #[test]
    fn chained_lock_across_closure_is_flagged() {
        // The PR 2 shape: the or_else closure runs while the own-deque
        // lock temporary is still alive.
        let src = "fn f() {\n  let job = q.lock().unwrap().pop_front().or_else(|| {\n    v.lock().unwrap().pop_back()\n  });\n}";
        assert_eq!(rules(src, CONC), vec!["TC-L002"]);
    }

    #[test]
    fn value_extraction_is_not_a_guard() {
        let src = "fn f() {\n  let own = q.lock().unwrap().pop_front();\n  let v = victim.lock().unwrap().pop_back();\n}";
        assert!(rules(src, CONC).is_empty());
    }

    #[test]
    fn flags_double_lock_in_one_statement() {
        let src = "fn f() { let x = a.lock().unwrap().merge(b.lock().unwrap()); }";
        assert_eq!(rules(src, CONC), vec!["TC-L002"]);
    }

    #[test]
    fn flags_second_lock_under_live_guard() {
        let src = "fn f() {\n  let g = own.lock().unwrap();\n  let v = victim.lock().unwrap();\n}";
        assert_eq!(rules(src, CONC), vec!["TC-L002"]);
    }

    #[test]
    fn guard_scope_ends_at_block_close() {
        let src =
            "fn f() {\n  { let g = own.lock().unwrap(); }\n  let v = victim.lock().unwrap();\n}";
        assert!(rules(src, CONC).is_empty());
    }

    #[test]
    fn drop_releases_the_guard() {
        let src =
            "fn f() {\n  let g = own.lock().unwrap();\n  drop(g);\n  let v = victim.lock().unwrap();\n}";
        assert!(rules(src, CONC).is_empty());
    }

    #[test]
    fn flags_blocking_recv_under_guard() {
        let src = "fn f() {\n  let g = m.lock().unwrap();\n  let x = rx.recv_timeout(d);\n}";
        assert_eq!(rules(src, CONC), vec!["TC-L001"]);
    }

    #[test]
    fn condvar_wait_is_exempt() {
        let src = "fn f() {\n  let g = m.lock().unwrap();\n  let g = cv.wait(g).unwrap();\n}";
        assert!(rules(src, CONC).is_empty());
    }

    #[test]
    fn flags_bare_recv_everywhere() {
        let src = "fn f() { let x = rx.recv(); }";
        assert_eq!(rules(src, PLAIN), vec!["TC-L003"]);
    }

    #[test]
    fn run_guarded_may_recv() {
        let src = "fn run_guarded() { let x = rx.recv(); }";
        assert!(rules(src, PLAIN).is_empty());
    }

    #[test]
    fn allow_marker_suppresses() {
        let src = "fn f() {\n  let g = a.lock().unwrap();\n  let v = b.lock().unwrap(); // lint: allow(TC-L002)\n}";
        assert!(rules(src, CONC).is_empty());
    }

    #[test]
    fn strings_and_comments_are_ignored() {
        let src = "fn f() {\n  // a.lock() b.lock()\n  let s = \".lock( .lock(\";\n}";
        assert!(rules(src, CONC).is_empty());
    }

    #[test]
    fn test_modules_are_skipped() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n  fn g() { let x = rx.recv(); }\n}";
        assert!(rules(src, PLAIN).is_empty());
    }
}

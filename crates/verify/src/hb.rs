//! Happens-before analysis of recorded traces: a vector-clock sweep that
//! replays every PE's event stream in causal order and proves (or refutes)
//! that the recorded run is consistent with the runtime's ordering
//! guarantees.
//!
//! The happens-before relation checked here is the standard one for
//! message-passing programs:
//!
//! * **program order** — events of one PE in recorded order;
//! * **message order** — a [`TraceEvent::Received`] happens-after the
//!   [`TraceEvent::Sent`] carrying the same `(sender, receiver, seq)` key
//!   (`alltoallv` constituents, which carry the
//!   [`COLL_CONSTITUENT_SEQ`](tricount_comm::trace::COLL_CONSTITUENT_SEQ)
//!   sentinel, are matched FIFO per channel instead);
//! * **barrier order** — a [`TraceEvent::CollExit`] of epoch *k*
//!   happens-after every PE's `CollEnter` of epoch *k*, and the *k*-th
//!   [`TraceEvent::PhaseEnded`] is a full barrier (the runtime's
//!   `end_phase` synchronises all PEs before recording it).
//!
//! The sweep is Kahn-style: one cursor per PE, an event is *enabled* when
//! all its incoming HB edges have been processed, and processing it joins
//! the PE's vector clock with the clocks those edges carry. A trace whose
//! sweep consumes every event is causally consistent; a stall means the
//! remaining events form a cycle — an ordering the real machine could not
//! have produced — reported as [`Violation::HbCycle`]. Local pathologies
//! (an orphaned receive, a FIFO regression, overlapping collective epochs)
//! are caught by a pre-scan and reported as their own variants.

use std::collections::VecDeque;
use std::fmt;

use tricount_comm::trace::COLL_CONSTITUENT_SEQ;
use tricount_comm::{Trace, TraceEvent};
use tricount_graph::hash::FxHashMap;

use crate::Violation;

/// The analyzer's verdict on one trace.
#[derive(Debug, Clone, Default)]
pub struct HbReport {
    /// All detected ordering violations, in detection order.
    pub violations: Vec<Violation>,
    /// Total events swept.
    pub events: usize,
    /// Point-to-point receives joined with their matching send's clock
    /// (`alltoallv` constituents included).
    pub messages_matched: u64,
    /// Collective epochs plus phase barriers the sweep synchronised on.
    pub barrier_epochs: usize,
    /// Final vector clock of each PE (component `j` = events of PE `j`
    /// causally visible to this PE's last event).
    pub clocks: Vec<Vec<u64>>,
}

impl HbReport {
    /// Whether the trace is causally consistent.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for HbReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "happens-before: {} events, {} messages matched, {} barrier epochs: {}",
            self.events,
            self.messages_matched,
            self.barrier_epochs,
            if self.is_clean() {
                "consistent".to_string()
            } else {
                format!("{} violation(s)", self.violations.len())
            }
        )?;
        for v in &self.violations {
            writeln!(f, "  - {v}")?;
        }
        Ok(())
    }
}

fn join(into: &mut [u64], other: &[u64]) {
    for (a, b) in into.iter_mut().zip(other) {
        *a = (*a).max(*b);
    }
}

fn event_name(e: &TraceEvent) -> String {
    match e {
        TraceEvent::QueueConfigured { .. } => "QueueConfigured".to_string(),
        TraceEvent::Posted { dest, .. } => format!("Posted(dest={dest})"),
        TraceEvent::Relayed { dest, .. } => format!("Relayed(dest={dest})"),
        TraceEvent::Flushed { peer, .. } => format!("Flushed(peer={peer})"),
        TraceEvent::Delivered { .. } => "Delivered".to_string(),
        TraceEvent::Sent { to, seq, .. } => format!("Sent(to={to}, seq={seq})"),
        TraceEvent::Received { from, seq, .. } => format!("Received(from={from}, seq={seq})"),
        TraceEvent::CollEnter { kind } => format!("CollEnter({})", kind.name()),
        TraceEvent::CollExit { kind } => format!("CollExit({})", kind.name()),
        TraceEvent::PhaseEnded { name } => format!("PhaseEnded({name})"),
    }
}

/// Pre-scan: per-PE pathologies that need no cross-PE sweep — orphaned
/// receives, FIFO regressions, collective-epoch overlap. Returns the
/// violations plus the send index the sweep matches receives against.
#[allow(clippy::type_complexity)]
fn prescan(
    trace: &Trace,
    violations: &mut Vec<Violation>,
) -> (
    FxHashMap<(usize, usize, u64), ()>,
    FxHashMap<(usize, usize), u64>,
) {
    let mut sends: FxHashMap<(usize, usize, u64), ()> = FxHashMap::default();
    let mut sentinel_sends: FxHashMap<(usize, usize), u64> = FxHashMap::default();
    for (pe, events) in trace.per_pe.iter().enumerate() {
        for e in events {
            if let TraceEvent::Sent { to, seq, .. } = e {
                if *seq == COLL_CONSTITUENT_SEQ {
                    *sentinel_sends.entry((pe, *to)).or_insert(0) += 1;
                } else {
                    sends.insert((pe, *to, *seq), ());
                }
            }
        }
    }
    for (pe, events) in trace.per_pe.iter().enumerate() {
        let mut last_seq: FxHashMap<usize, u64> = FxHashMap::default();
        let mut open_coll: Option<&'static str> = None;
        for (i, e) in events.iter().enumerate() {
            match e {
                TraceEvent::Received { from, seq, .. } if *seq != COLL_CONSTITUENT_SEQ => {
                    if !sends.contains_key(&(*from, pe, *seq)) {
                        violations.push(Violation::HbUnmatchedReceive {
                            pe,
                            from: *from,
                            seq: *seq,
                        });
                    }
                    match last_seq.get(from) {
                        Some(&prev) if *seq <= prev => {
                            violations.push(Violation::HbReceiveReorder {
                                pe,
                                from: *from,
                                seq: *seq,
                                prev_seq: prev,
                            });
                        }
                        _ => {
                            last_seq.insert(*from, *seq);
                        }
                    }
                }
                TraceEvent::CollEnter { kind } => {
                    if let Some(inner) = open_coll {
                        violations.push(Violation::CollectiveOverlap {
                            pe,
                            index: i,
                            detail: format!("entered {} while inside {inner}", kind.name()),
                        });
                    }
                    open_coll = Some(kind.name());
                }
                TraceEvent::CollExit { kind } => match open_coll.take() {
                    None => violations.push(Violation::CollectiveOverlap {
                        pe,
                        index: i,
                        detail: format!("exited {} without entering it", kind.name()),
                    }),
                    Some(inner) if inner != kind.name() => {
                        violations.push(Violation::CollectiveOverlap {
                            pe,
                            index: i,
                            detail: format!("exited {} while inside {inner}", kind.name()),
                        });
                    }
                    Some(_) => {}
                },
                _ => {}
            }
        }
        if let Some(inner) = open_coll {
            violations.push(Violation::CollectiveOverlap {
                pe,
                index: events.len(),
                detail: format!("{inner} entered but never exited"),
            });
        }
    }
    (sends, sentinel_sends)
}

/// Sweeps `trace` in causal order with per-PE vector clocks and reports
/// every ordering violation found. A clean report proves the recorded run
/// is consistent with program order, per-channel FIFO message order, and
/// barrier-synchronised collectives/phases.
pub fn check_hb(trace: &Trace) -> HbReport {
    let p = trace.num_ranks();
    let mut report = HbReport {
        clocks: vec![vec![0u64; p]; p],
        ..HbReport::default()
    };
    if p == 0 {
        return report;
    }
    let (sends, sentinel_send_totals) = prescan(trace, &mut report.violations);

    // Sweep state.
    let mut cursor = vec![0usize; p];
    // Clock snapshot taken when a Sent is processed, keyed like `sends`.
    let mut send_clock: FxHashMap<(usize, usize, u64), Vec<u64>> = FxHashMap::default();
    // FIFO snapshots for alltoallv constituents, per (sender, receiver).
    let mut sentinel_clock: FxHashMap<(usize, usize), VecDeque<Vec<u64>>> = FxHashMap::default();
    let mut sentinel_recvd: FxHashMap<(usize, usize), u64> = FxHashMap::default();
    // Collective epochs: per-PE enter/exit counts and the merged
    // enter-clock of each epoch.
    let mut enters = vec![0usize; p];
    let mut coll_enter_merge: Vec<Vec<u64>> = Vec::new();
    // Phase barriers: per-PE PhaseEnded counts and the merged barrier
    // clock, computed when the first PE crosses.
    let mut phases = vec![0usize; p];
    let mut phase_merge: Vec<Option<Vec<u64>>> = Vec::new();

    let is_phase_ended = |pe: usize, at: usize| {
        matches!(
            trace.per_pe[pe].get(at),
            Some(TraceEvent::PhaseEnded { .. })
        )
    };

    loop {
        let mut progressed = false;
        for pe in 0..p {
            while cursor[pe] < trace.per_pe[pe].len() {
                let e = &trace.per_pe[pe][cursor[pe]];
                // Gate check: all incoming HB edges processed?
                let enabled = match e {
                    TraceEvent::Received { from, seq, .. } => {
                        if *seq == COLL_CONSTITUENT_SEQ {
                            let sent = sentinel_clock
                                .get(&(*from, pe))
                                .map_or(0, |q| q.len() as u64)
                                + sentinel_recvd.get(&(*from, pe)).copied().unwrap_or(0);
                            // More sentinel receives than the sender ever
                            // records sending can never be enabled; let the
                            // orphan through so the sweep can finish, and
                            // report it.
                            let total =
                                sentinel_send_totals.get(&(*from, pe)).copied().unwrap_or(0);
                            let consumed = sentinel_recvd.get(&(*from, pe)).copied().unwrap_or(0);
                            if consumed >= total {
                                report.violations.push(Violation::HbUnmatchedReceive {
                                    pe,
                                    from: *from,
                                    seq: *seq,
                                });
                                true
                            } else {
                                sent > consumed
                            }
                        } else if sends.contains_key(&(*from, pe, *seq)) {
                            send_clock.contains_key(&(*from, pe, *seq))
                        } else {
                            true // orphan, already reported by the pre-scan
                        }
                    }
                    TraceEvent::CollExit { .. } => {
                        // Epoch of this exit = how many enters this PE has
                        // processed, minus one (enter precedes exit in
                        // program order; a mismatched stream falls back to
                        // "enabled" and was reported by the pre-scan).
                        match enters[pe].checked_sub(1) {
                            Some(k) => enters.iter().all(|&c| c > k),
                            None => true,
                        }
                    }
                    TraceEvent::PhaseEnded { .. } => {
                        let k = phases[pe];
                        (0..p).all(|j| {
                            phases[j] > k || (phases[j] == k && is_phase_ended(j, cursor[j]))
                        })
                    }
                    _ => true,
                };
                if !enabled {
                    break;
                }
                // Process: bump own clock component, join incoming edges,
                // publish outgoing ones.
                report.clocks[pe][pe] += 1;
                match e {
                    TraceEvent::Sent { to, seq, .. } => {
                        let snap = report.clocks[pe].clone();
                        if *seq == COLL_CONSTITUENT_SEQ {
                            sentinel_clock.entry((pe, *to)).or_default().push_back(snap);
                        } else {
                            send_clock.insert((pe, *to, *seq), snap);
                        }
                    }
                    TraceEvent::Received { from, seq, .. } => {
                        if *seq == COLL_CONSTITUENT_SEQ {
                            if let Some(snap) = sentinel_clock
                                .get_mut(&(*from, pe))
                                .and_then(VecDeque::pop_front)
                            {
                                join_at(&mut report.clocks, pe, &snap);
                                *sentinel_recvd.entry((*from, pe)).or_insert(0) += 1;
                                report.messages_matched += 1;
                            }
                        } else if let Some(snap) = send_clock.get(&(*from, pe, *seq)) {
                            let snap = snap.clone();
                            join_at(&mut report.clocks, pe, &snap);
                            report.messages_matched += 1;
                        }
                    }
                    TraceEvent::CollEnter { .. } => {
                        let k = enters[pe];
                        if coll_enter_merge.len() <= k {
                            coll_enter_merge.resize(k + 1, vec![0u64; p]);
                        }
                        let snap = report.clocks[pe].clone();
                        join(&mut coll_enter_merge[k], &snap);
                        enters[pe] += 1;
                    }
                    TraceEvent::CollExit { .. } => {
                        if let Some(k) = enters[pe].checked_sub(1) {
                            if let Some(m) = coll_enter_merge.get(k) {
                                let m = m.clone();
                                join_at(&mut report.clocks, pe, &m);
                            }
                        }
                    }
                    TraceEvent::PhaseEnded { .. } => {
                        let k = phases[pe];
                        if phase_merge.len() <= k {
                            phase_merge.resize(k + 1, None);
                        }
                        if phase_merge[k].is_none() {
                            // First PE across: every other PE is parked at
                            // this barrier, so the join of all current
                            // clocks is the barrier clock.
                            let mut m = vec![0u64; p];
                            for c in report.clocks.iter() {
                                join(&mut m, c);
                            }
                            phase_merge[k] = Some(m);
                        }
                        if let Some(m) = phase_merge[k].clone() {
                            join_at(&mut report.clocks, pe, &m);
                        }
                        phases[pe] += 1;
                    }
                    _ => {}
                }
                cursor[pe] += 1;
                report.events += 1;
                progressed = true;
            }
        }
        if cursor
            .iter()
            .enumerate()
            .all(|(pe, &c)| c >= trace.per_pe[pe].len())
        {
            break;
        }
        if !progressed {
            let detail: Vec<String> = (0..p)
                .filter(|&pe| cursor[pe] < trace.per_pe[pe].len())
                .map(|pe| {
                    format!(
                        "PE {pe} stuck at event {} ({})",
                        cursor[pe],
                        event_name(&trace.per_pe[pe][cursor[pe]])
                    )
                })
                .collect();
            report.violations.push(Violation::HbCycle {
                detail: detail.join("; "),
            });
            break;
        }
    }
    report.barrier_epochs = coll_enter_merge.len() + phase_merge.len();
    report
}

/// Joins `other` into `clocks[pe]` (`other` is always a snapshot clone,
/// never an alias of `clocks[pe]`).
fn join_at(clocks: &mut [Vec<u64>], pe: usize, other: &[u64]) {
    join(&mut clocks[pe], other);
}

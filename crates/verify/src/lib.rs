//! Verification layer for the simulated distributed runtime: a protocol
//! conformance linter over recorded traces (`tricount-comm`'s `trace`
//! feature) and a determinism/deadlock harness.

#![warn(missing_docs)]

pub mod conformance;
pub mod determinism;
pub mod hb;
pub mod lint;

pub use conformance::{check_phase_names, check_trace, ConformanceReport, Violation};
pub use hb::{check_hb, HbReport};
pub use lint::{lint_source, lint_workspace, LintFinding, LintReport, LintScope};

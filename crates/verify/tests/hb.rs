//! Happens-before analysis end to end: traces of every algorithm variant
//! and of the dynamic-update protocol are causally consistent, and seeded
//! single-event mutations — the kind a real delivery-order bug would
//! produce — are each flagged by the dedicated violation.

use std::sync::Mutex;

use tricount_comm::trace::COLL_CONSTITUENT_SEQ;
use tricount_comm::{SimOptions, Trace, TraceEvent};
use tricount_core::config::{Algorithm, DistConfig};
use tricount_core::dist::delta::apply_batch_sim;
use tricount_core::dist::residency::{build_residency, PreparedRank};
use tricount_core::dist::run_on;
use tricount_delta::{random_batch, Overlay};
use tricount_graph::dist::DistGraph;
use tricount_verify::{check_hb, Violation};

fn traced_run(g: &tricount_graph::Csr, p: usize, alg: Algorithm) -> Trace {
    let dg = DistGraph::new_balanced_vertices(g, p);
    let (_, trace) = run_on(dg, alg, &alg.config(), &SimOptions::traced())
        .unwrap_or_else(|e| panic!("{} failed on p={p}: {e}", alg.name()));
    trace.expect("built with the `trace` feature")
}

/// All seven variants of the paper's evaluation produce causally
/// consistent traces: every receive happens-after its send, every
/// collective epoch is barrier-ordered, and the vector-clock sweep
/// consumes the whole trace.
#[test]
fn all_variants_are_hb_consistent() {
    let g = tricount_gen::rmat::rmat_default(8, 7);
    for p in [4, 16] {
        for alg in Algorithm::all() {
            let trace = traced_run(&g, p, alg);
            let rep = check_hb(&trace);
            assert!(rep.is_clean(), "{} p={p}:\n{rep}", alg.name());
            assert_eq!(
                rep.events,
                trace.len(),
                "{} p={p}: sweep must consume every event",
                alg.name()
            );
            assert!(rep.barrier_epochs > 0, "{} p={p}", alg.name());
        }
    }
}

/// The dynamic-update protocol (`apply_batch`) is HB-consistent too, and
/// its point-to-point traffic is fully matched send-to-receive.
#[test]
fn delta_update_run_is_hb_consistent() {
    let cfg = DistConfig::default();
    let p = 4;
    let g = tricount_gen::rgg2d_default(300, 7);
    let dg = DistGraph::new_balanced_vertices(&g, p);
    let (ranks, _): (Vec<PreparedRank>, _) = build_residency(dg, &cfg, &SimOptions::default());
    let overlays: Vec<Mutex<Overlay>> = ranks
        .iter()
        .map(|r| Mutex::new(Overlay::for_local(&r.local)))
        .collect();
    let batch = random_batch(&g, 25, 217).canonicalize();
    let (_, _, trace) = apply_batch_sim(&ranks, &overlays, &batch, &cfg, &SimOptions::traced());
    let trace = trace.expect("traced");
    let rep = check_hb(&trace);
    assert!(rep.is_clean(), "{rep}");
    assert!(rep.messages_matched > 0, "update run must exchange p2p");
}

/// Finds a PE with two point-to-point receives from the same sender and
/// swaps them, emulating an out-of-order delivery.
fn swap_same_sender_receives(trace: &mut Trace) -> (usize, usize) {
    for (pe, events) in trace.per_pe.iter_mut().enumerate() {
        let recvs: Vec<(usize, usize)> = events
            .iter()
            .enumerate()
            .filter_map(|(i, e)| match e {
                TraceEvent::Received { from, seq, .. } if *seq != COLL_CONSTITUENT_SEQ => {
                    Some((i, *from))
                }
                _ => None,
            })
            .collect();
        for w in 0..recvs.len() {
            if let Some(&(j, _)) = recvs[w + 1..].iter().find(|&&(_, f)| f == recvs[w].1) {
                let i = recvs[w].0;
                events.swap(i, j);
                return (pe, i);
            }
        }
    }
    panic!("no same-sender receive pair in the trace");
}

/// Reordering two receives from the same sender — exactly what a delivery
/// bug in the runtime would record — is flagged as a FIFO regression.
#[test]
fn reordered_receive_is_flagged() {
    let g = tricount_gen::rmat::rmat_default(8, 7);
    let mut trace = traced_run(&g, 8, Algorithm::Ditric);
    let rep = check_hb(&trace);
    assert!(rep.is_clean(), "pre-mutation trace must be clean:\n{rep}");
    let (pe, _) = swap_same_sender_receives(&mut trace);
    let rep = check_hb(&trace);
    assert!(
        rep.violations
            .iter()
            .any(|v| matches!(v, Violation::HbReceiveReorder { pe: vpe, .. } if *vpe == pe)),
        "swap on PE {pe} must be flagged:\n{rep}"
    );
}

/// Moving a collective entry before the previous collective's exit — epoch
/// overlap, the precursor of cross-PE deadlock — is flagged.
#[test]
fn overlapping_collective_epochs_are_flagged() {
    let g = tricount_gen::rmat::rmat_default(8, 7);
    let mut trace = traced_run(&g, 4, Algorithm::Cetric);
    let pe = 1;
    let events = &mut trace.per_pe[pe];
    let i = (0..events.len() - 1)
        .find(|&i| {
            matches!(events[i], TraceEvent::CollExit { .. })
                && matches!(events[i + 1], TraceEvent::CollEnter { .. })
        })
        .expect("trace has consecutive collectives");
    events.swap(i, i + 1);
    let rep = check_hb(&trace);
    assert!(
        rep.violations
            .iter()
            .any(|v| matches!(v, Violation::CollectiveOverlap { pe: vpe, .. } if *vpe == pe)),
        "epoch overlap on PE {pe} must be flagged:\n{rep}"
    );
}

/// Deleting a send makes its receive an orphan: flagged as unmatched, and
/// the sweep still terminates (no hang on a broken trace).
#[test]
fn orphaned_receive_is_flagged() {
    let g = tricount_gen::rmat::rmat_default(8, 7);
    let mut trace = traced_run(&g, 8, Algorithm::Unaggregated);
    let mut removed = None;
    'outer: for (pe, events) in trace.per_pe.iter_mut().enumerate() {
        for i in 0..events.len() {
            if let TraceEvent::Sent { to, seq, .. } = events[i] {
                if seq != COLL_CONSTITUENT_SEQ {
                    events.remove(i);
                    removed = Some((pe, to, seq));
                    break 'outer;
                }
            }
        }
    }
    let (from, to, seq) = removed.expect("trace has a p2p send");
    let rep = check_hb(&trace);
    assert!(
        rep.violations.iter().any(|v| matches!(
            v,
            Violation::HbUnmatchedReceive { pe, from: f, seq: s }
                if *pe == to && *f == from && *s == seq
        )),
        "orphaned receive ({from}->{to} seq {seq}) must be flagged:\n{rep}"
    );
}

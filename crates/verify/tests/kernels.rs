//! Kernel-layer determinism acceptance tests for the adaptive intersection
//! dispatcher and intra-PE chunked counting:
//!
//! * every forced kernel (and the adaptive dispatcher) produces the same
//!   triangle count **and** bit-identical communication counters — kernel
//!   choice only moves `work_ops`, never what goes on the wire;
//! * for a *fixed* policy, chunked counting is bit-identical to sequential
//!   counting — counts, `work_ops`, comm counters, and the per-phase
//!   dispatch report all match across pool sizes {1, 2, 8};
//! * a fixed chunked policy stays bit-identical under ≥8 seeded schedule
//!   perturbations (the determinism contract of PR 3 extends to the
//!   parallel counting path).

use tricount_comm::stats::Counters;
use tricount_comm::SimOptions;
use tricount_core::config::Algorithm;
use tricount_core::dist::dispatch::DispatchReport;
use tricount_core::dist::run_on_stats;
use tricount_core::seq::compact_forward;
use tricount_gen::rmat::rmat_default;
use tricount_graph::dist::DistGraph;
use tricount_graph::kernels::{KernelChoice, KernelPolicy};
use tricount_graph::Csr;

const SEEDS: [u64; 8] = [1, 2, 3, 5, 8, 13, 21, 34];

/// Low enough that the 256-vertex fixture actually has hub-indexed lists,
/// so the bitmap path is exercised rather than silently skipped.
const HUB_THRESHOLD: u64 = 8;

/// Everything a run produces that the determinism contract covers: the
/// count, the full per-phase per-rank counters, and the dispatch report.
type Observed = (u64, Vec<(String, Vec<Counters>)>, DispatchReport);

fn run_with_policy(
    g: &Csr,
    p: usize,
    alg: Algorithm,
    policy: KernelPolicy,
    opts: &SimOptions,
) -> Observed {
    let dg = DistGraph::new_balanced_vertices(g, p);
    let mut cfg = alg.config();
    cfg.kernels = policy;
    let (res, _trace, dispatch) = run_on_stats(dg, alg, &cfg, opts)
        .unwrap_or_else(|e| panic!("{} failed on p={p}: {e}", alg.name()));
    let phases = res
        .stats
        .phases
        .iter()
        .map(|ph| (ph.name.clone(), ph.per_rank.clone()))
        .collect();
    (res.triangles, phases, dispatch)
}

/// The communication-only projection of a counter set: every field except
/// local work. Kernel choice may change `work_ops`; it must never change
/// any of these.
fn comm_only(c: &Counters) -> [u64; 8] {
    [
        c.sent_messages,
        c.sent_words,
        c.recv_messages,
        c.recv_words,
        c.coll_alpha_units,
        c.coll_word_units,
        c.sent_peers,
        c.recv_peers,
    ]
}

fn comm_projection(phases: &[(String, Vec<Counters>)]) -> Vec<(String, Vec<[u64; 8]>)> {
    phases
        .iter()
        .map(|(name, ranks)| (name.clone(), ranks.iter().map(comm_only).collect()))
        .collect()
}

fn policy(kernel: KernelChoice, pool_workers: usize) -> KernelPolicy {
    KernelPolicy {
        kernel,
        hub_threshold: HUB_THRESHOLD,
        chunking: pool_workers > 1,
        pool_workers,
    }
}

/// Forcing any single kernel — or letting the dispatcher pick — changes
/// neither the triangle count nor a single word on the wire. Only
/// `work_ops` is allowed to move with the kernel.
#[test]
fn kernel_choices_agree_on_counts_and_comm() {
    let g = rmat_default(8, 3);
    let truth = compact_forward(&g).triangles;
    assert!(truth > 0, "test graph must contain triangles");
    for p in [1usize, 4, 9] {
        for alg in [Algorithm::Cetric, Algorithm::Ditric] {
            let (base_count, base_phases, _) = run_with_policy(
                &g,
                p,
                alg,
                policy(KernelChoice::Merge, 1),
                &SimOptions::default(),
            );
            assert_eq!(base_count, truth, "{} p={p} merge miscounted", alg.name());
            let base_comm = comm_projection(&base_phases);
            for kernel in [
                KernelChoice::Gallop,
                KernelChoice::Binary,
                KernelChoice::Bitmap,
                KernelChoice::Auto,
            ] {
                let (count, phases, dispatch) =
                    run_with_policy(&g, p, alg, policy(kernel, 1), &SimOptions::default());
                assert_eq!(
                    count,
                    truth,
                    "{} p={p} {} miscounted",
                    alg.name(),
                    kernel.name()
                );
                assert_eq!(
                    comm_projection(&phases),
                    base_comm,
                    "{} p={p} {}: kernel choice leaked into comm counters",
                    alg.name(),
                    kernel.name()
                );
                assert!(
                    !dispatch.is_empty(),
                    "{} p={p} {}: no dispatches recorded",
                    alg.name(),
                    kernel.name()
                );
            }
        }
    }
}

/// The bit-equality contract of chunked counting: for a fixed policy,
/// running the local phase over a worker pool of any size reproduces the
/// sequential run exactly — count, `work_ops`, comm counters *and* the
/// per-phase dispatch report.
#[test]
fn chunked_counting_bit_identical_to_sequential() {
    let g = rmat_default(8, 3);
    for p in [1usize, 4, 9] {
        for alg in [Algorithm::Cetric, Algorithm::Ditric] {
            let sequential = run_with_policy(
                &g,
                p,
                alg,
                policy(KernelChoice::Auto, 1),
                &SimOptions::default(),
            );
            for pool_workers in [2usize, 8] {
                let chunked = run_with_policy(
                    &g,
                    p,
                    alg,
                    policy(KernelChoice::Auto, pool_workers),
                    &SimOptions::default(),
                );
                assert_eq!(
                    chunked,
                    sequential,
                    "{} p={p} pool={pool_workers}: chunked run diverged from sequential",
                    alg.name()
                );
            }
        }
    }
}

/// A fixed chunked policy under seeded schedule perturbations: counts,
/// counters and dispatch reports are bit-identical across all schedules,
/// at p = 4 and p = 9.
#[test]
fn chunked_policy_schedule_independent() {
    let g = rmat_default(8, 3);
    let pol = policy(KernelChoice::Auto, 4);
    for p in [4usize, 9] {
        for alg in [Algorithm::Cetric, Algorithm::Ditric] {
            let baseline = run_with_policy(&g, p, alg, pol, &SimOptions::default());
            for seed in SEEDS {
                let perturbed = run_with_policy(&g, p, alg, pol, &SimOptions::perturbed(seed));
                assert_eq!(
                    perturbed,
                    baseline,
                    "{} p={p} diverged under schedule seed {seed}",
                    alg.name()
                );
            }
        }
    }
}

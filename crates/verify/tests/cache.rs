//! Cache-equivalence bar: a run with a live adjacency cache must be
//! *observationally identical* to the uncached protocol — bit-equal counts
//! (and LCC vectors, support answers, update outcomes) and identical
//! non-cache meters (`work_ops`: the intersections performed are the same
//! whether a neighborhood arrived inline or resolved from a held entry).
//! Only the wire volume may change, and on a warm cache it must *drop*.
//!
//! Every assertion runs on both the metered simulator and the threads
//! backend — the cache commits its run log in canonical order, so the
//! final cache state itself is transport- and schedule-independent.

use std::sync::Mutex;

use tricount_cache::{CacheConfig, CacheReport, CacheSession, RankCache};
use tricount_comm::{run_sim, Counters, RunStats, SimOptions, TransportKind};
use tricount_core::config::{Algorithm, DistConfig};
use tricount_core::dist::delta::{apply_batch_rank, apply_batch_rank_cached, DeltaOutcome};
use tricount_core::dist::lcc::{lcc_prepared, lcc_prepared_cached};
use tricount_core::dist::residency::{build_residency, PreparedRank};
use tricount_core::dist::support::{edge_support_rank, edge_support_rank_cached};
use tricount_core::dist::{run_on, run_on_cached};
use tricount_core::seq::compact_forward;
use tricount_delta::{random_batch, CanonicalBatch, Overlay};
use tricount_graph::dist::{DistGraph, LocalGraph};
use tricount_graph::Csr;

fn fixture() -> Csr {
    tricount_gen::rmat::rmat_default(8, 11)
}

fn backends() -> [SimOptions; 2] {
    [
        SimOptions::default(),
        SimOptions::on(TransportKind::Threads),
    ]
}

fn cache_cfg() -> CacheConfig {
    // Generous budget: equivalence assertions should not be muddied by
    // evictions (capacity behavior has its own unit suite).
    CacheConfig::with_budget(1 << 22)
}

fn fresh_cells(p: usize) -> Vec<Mutex<RankCache>> {
    (0..p)
        .map(|_| Mutex::new(RankCache::new(cache_cfg(), p, None)))
        .collect()
}

/// Per-rank `work_ops` totals — the meter the cache must never perturb.
fn work_per_rank(stats: &RunStats) -> Vec<u64> {
    let mut out = vec![0u64; stats.p];
    for ph in &stats.phases {
        for (r, c) in ph.per_rank.iter().enumerate() {
            out[r] += c.work_ops;
        }
    }
    out
}

fn sent_words_total(stats: &RunStats) -> u64 {
    let mut totals = Counters::default();
    for ph in &stats.phases {
        for c in &ph.per_rank {
            totals.absorb(c);
        }
    }
    totals.sent_words
}

/// All seven variants, both backends, p ∈ {1, 4, 9}: a cold cached run
/// bit-matches the uncached count and its work meter; a second run over the
/// warm cells still bit-matches while turning every repeated adjacency
/// shipment into a reference (zero misses, strictly fewer words on the
/// wire).
#[test]
fn all_variants_bit_equal_cached_vs_uncached() {
    let g = fixture();
    let truth = compact_forward(&g).triangles;
    for p in [1usize, 4, 9] {
        for alg in Algorithm::all() {
            let cfg = alg.config();
            for opts in backends() {
                let (plain, _) = run_on(DistGraph::new_balanced_vertices(&g, p), alg, &cfg, &opts)
                    .unwrap_or_else(|e| panic!("{} p={p} uncached: {e}", alg.name()));
                assert_eq!(plain.triangles, truth, "{} p={p} uncached", alg.name());

                let cells = fresh_cells(p);
                let run_cached = || {
                    run_on_cached(
                        DistGraph::new_balanced_vertices(&g, p),
                        alg,
                        &cfg,
                        &opts,
                        &cells,
                    )
                    .unwrap_or_else(|e| panic!("{} p={p} cached: {e}", alg.name()))
                };
                let (cold, _, cold_report) = run_cached();
                assert_eq!(cold.triangles, truth, "{} p={p} cold cache", alg.name());
                assert_eq!(
                    work_per_rank(&plain.stats),
                    work_per_rank(&cold.stats),
                    "{} p={p}: cache changed the work meter",
                    alg.name()
                );
                // Cold cache over empty cells: every lookup misses.
                assert_eq!(cold_report.hits, 0, "{} p={p} cold hits", alg.name());

                let (warm, _, warm_report) = run_cached();
                assert_eq!(warm.triangles, truth, "{} p={p} warm cache", alg.name());
                assert_eq!(
                    work_per_rank(&plain.stats),
                    work_per_rank(&warm.stats),
                    "{} p={p}: warm cache changed the work meter",
                    alg.name()
                );
                if cold_report.staged > 0 {
                    // The protocol repeats the same shipments, so the warm
                    // run must resolve all of them from the cache.
                    assert_eq!(warm_report.misses, 0, "{} p={p} warm misses", alg.name());
                    assert!(warm_report.hits > 0, "{} p={p} warm hits", alg.name());
                    assert!(
                        warm_report.words_saved > 0,
                        "{} p={p} warm words saved",
                        alg.name()
                    );
                    assert!(
                        sent_words_total(&warm.stats) < sent_words_total(&cold.stats),
                        "{} p={p}: warm run must ship fewer words",
                        alg.name()
                    );
                }
            }
        }
    }
}

/// The LCC pipeline over prepared residency: cached per-vertex triangle
/// counts bit-match the uncached ones on both backends, and a repeated
/// query on the warm cells hits instead of re-shipping.
#[test]
fn lcc_bit_equal_cached_vs_uncached() {
    let g = fixture();
    let p = 4;
    let cfg = DistConfig::default();
    for opts in backends() {
        let (ranks, _): (Vec<PreparedRank>, _) =
            build_residency(DistGraph::new_balanced_vertices(&g, p), &cfg, &opts);
        let plain = run_sim(p, &opts, |ctx| lcc_prepared(ctx, &ranks[ctx.rank()], &cfg))
            .output
            .results;

        let cells = fresh_cells(p);
        let run_cached = || {
            let sim = run_sim(p, &opts, |ctx| {
                let mut cache = cells[ctx.rank()].lock().unwrap();
                let generation = cache.generation();
                let mut session = CacheSession::write(&mut cache, generation);
                let out = lcc_prepared_cached(ctx, &ranks[ctx.rank()], &cfg, &mut session).0;
                (out, session.finish().report)
            });
            let mut report = CacheReport::default();
            let mut answers = Vec::new();
            for (a, r) in sim.output.results {
                answers.push(a);
                report.absorb(&r);
            }
            (answers, report)
        };
        let (cold, cold_report) = run_cached();
        assert_eq!(plain, cold, "cold cached LCC diverged");
        let (warm, warm_report) = run_cached();
        assert_eq!(plain, warm, "warm cached LCC diverged");
        assert!(cold_report.staged > 0, "fixture must ship contracted lists");
        assert_eq!(warm_report.misses, 0);
        assert!(warm_report.hits > 0);
    }
}

/// Edge support: cached answers bit-match uncached on both backends; the
/// repeated-query workload resolves every remote `N(a)` from the cache.
#[test]
fn support_bit_equal_cached_vs_uncached() {
    let g = fixture();
    let p = 4;
    let cfg = DistConfig::default();
    let mut queries: Vec<(u64, u64)> = vec![(0, 1), (3, 200), (200, 3)];
    for v in 0..g.num_vertices() {
        for &u in g.neighbors(v) {
            if v < u && queries.len() < 48 {
                queries.push((v, u));
            }
        }
    }
    for opts in backends() {
        let locals: Vec<LocalGraph> = DistGraph::new_balanced_vertices(&g, p).into_locals();
        let q = queries.clone();
        let plain = run_sim(p, &opts, |ctx| {
            edge_support_rank(ctx, &locals[ctx.rank()], &q, &cfg)
        })
        .output
        .results;

        let cells = fresh_cells(p);
        let run_cached = || {
            let q = queries.clone();
            let sim = run_sim(p, &opts, |ctx| {
                let mut cache = cells[ctx.rank()].lock().unwrap();
                let generation = cache.generation();
                let mut session = CacheSession::write(&mut cache, generation);
                let out =
                    edge_support_rank_cached(ctx, &locals[ctx.rank()], &q, &cfg, &mut session).0;
                (out, session.finish().report)
            });
            let mut report = CacheReport::default();
            let mut answers = Vec::new();
            for (a, r) in sim.output.results {
                answers.push(a);
                report.absorb(&r);
            }
            (answers, report)
        };
        let (cold, cold_report) = run_cached();
        assert_eq!(plain, cold, "cold cached support diverged");
        let (warm, warm_report) = run_cached();
        assert_eq!(plain, warm, "warm cached support diverged");
        assert!(cold_report.staged > 0, "queries must cross rank boundaries");
        assert_eq!(warm_report.misses, 0);
        assert!(warm_report.hits > 0);
        assert!(warm_report.words_saved > 0);
    }
}

/// The dynamic-update protocol under a persistent cache: three sequential
/// batches applied with live write sessions produce outcome-for-outcome the
/// same insertions, deletions and triangle deltas as the uncached protocol,
/// on both backends. Later batches *reuse* merged lists cached by earlier
/// ones — kept exact by the `update_route` coherence patches — so the run
/// reports hits.
#[test]
fn delta_updates_bit_equal_cached_vs_uncached() {
    let cfg = DistConfig::default();
    let p = 4;
    let g = tricount_gen::rgg2d_default(300, 7);
    let batches: Vec<CanonicalBatch> = [217u64, 218, 219]
        .iter()
        .map(|&seed| random_batch(&g, 40, seed).canonicalize())
        .collect();

    for opts in backends() {
        let run_plain = || -> Vec<Vec<DeltaOutcome>> {
            let (ranks, _) = build_residency(DistGraph::new_balanced_vertices(&g, p), &cfg, &opts);
            let overlays: Vec<Mutex<Overlay>> = ranks
                .iter()
                .map(|r| Mutex::new(Overlay::for_local(&r.local)))
                .collect();
            batches
                .iter()
                .map(|batch| {
                    run_sim(p, &opts, |ctx| {
                        let prep = &ranks[ctx.rank()];
                        let mut ov = overlays[ctx.rank()].lock().unwrap();
                        apply_batch_rank(ctx, &prep.local, &mut ov, batch, &cfg)
                    })
                    .output
                    .results
                })
                .collect()
        };
        let run_cached = || -> (Vec<Vec<DeltaOutcome>>, CacheReport) {
            let (ranks, _) = build_residency(DistGraph::new_balanced_vertices(&g, p), &cfg, &opts);
            let overlays: Vec<Mutex<Overlay>> = ranks
                .iter()
                .map(|r| Mutex::new(Overlay::for_local(&r.local)))
                .collect();
            let cells = fresh_cells(p);
            let mut report = CacheReport::default();
            let outcomes = batches
                .iter()
                .map(|batch| {
                    let sim = run_sim(p, &opts, |ctx| {
                        let prep = &ranks[ctx.rank()];
                        let mut ov = overlays[ctx.rank()].lock().unwrap();
                        let mut cache = cells[ctx.rank()].lock().unwrap();
                        let mut session = CacheSession::write(&mut cache, prep.generation);
                        let out = apply_batch_rank_cached(
                            ctx,
                            &prep.local,
                            &mut ov,
                            batch,
                            &cfg,
                            &mut session,
                        );
                        (out, session.finish().report)
                    });
                    sim.output
                        .results
                        .into_iter()
                        .map(|(o, r)| {
                            report.absorb(&r);
                            o
                        })
                        .collect()
                })
                .collect();
            (outcomes, report)
        };

        let plain = run_plain();
        let (cached, report) = run_cached();
        for (b, (pb, cb)) in plain.iter().zip(&cached).enumerate() {
            for (rank, (s, t)) in pb.iter().zip(cb).enumerate() {
                assert_eq!(s.inserted, t.inserted, "batch {b} rank {rank} insertions");
                assert_eq!(s.deleted, t.deleted, "batch {b} rank {rank} deletions");
                assert_eq!(s.noops, t.noops, "batch {b} rank {rank} no-ops");
                assert_eq!(
                    s.triangles_added, t.triangles_added,
                    "batch {b} rank {rank} gains"
                );
                assert_eq!(
                    s.triangles_removed, t.triangles_removed,
                    "batch {b} rank {rank} losses"
                );
            }
        }
        assert!(
            report.staged > 0,
            "insertion passes must stage merged lists"
        );
        assert!(
            report.hits > 0,
            "later batches must reuse earlier batches' cached lists"
        );
    }
}

/// The committed cache state is a pure function of the workload: after the
/// same runs, the cells hold the same entries and words on the simulator
/// and the threads backend, and the folded reports agree.
#[test]
fn cache_state_is_transport_independent() {
    let g = fixture();
    let p = 4;
    let alg = Algorithm::Cetric;
    let cfg = alg.config();
    let snapshot = |opts: &SimOptions| {
        let cells = fresh_cells(p);
        let mut reports = Vec::new();
        for _ in 0..2 {
            let (_, _, r) = run_on_cached(
                DistGraph::new_balanced_vertices(&g, p),
                alg,
                &cfg,
                opts,
                &cells,
            )
            .expect("cached run");
            reports.push((r.hits, r.misses, r.words_saved, r.words_shipped, r.staged));
        }
        let state: Vec<(u64, u64)> = cells
            .iter()
            .map(|c| {
                let c = c.lock().unwrap();
                (c.held_entries(), c.resident_words())
            })
            .collect();
        (reports, state)
    };
    let [sim, thr] = backends();
    assert_eq!(snapshot(&sim), snapshot(&thr));
}

//! The workspace's own sources pass `tricount-lint`, and the waivers in
//! the tree are load-bearing: stripping them re-flags the sites.

use std::path::Path;

use tricount_verify::{lint_source, lint_workspace, LintScope};

fn workspace_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn workspace_sources_are_lint_clean() {
    let report = lint_workspace(&workspace_root()).expect("workspace scan");
    assert!(report.is_clean(), "{report}");
    assert!(
        report.files_scanned > 50,
        "scan looks truncated: only {} files",
        report.files_scanned
    );
}

/// The `mc-regressions` steal path in `tricount-par` carries
/// `lint: allow(TC-L002)` waivers because it deliberately re-creates the
/// PR 2 double-lock shape. Stripping the waivers must re-flag it —
/// proving the rule still sees through the exact bug the model checker
/// hunts.
#[test]
fn buggy_steal_path_is_flagged_without_its_waiver() {
    let par = workspace_root().join("crates/par/src/lib.rs");
    let src = std::fs::read_to_string(&par).expect("read par sources");
    assert!(
        src.contains("lint: allow(TC-L002)"),
        "the resurrected bug must carry its waiver"
    );
    let stripped = src.replace("lint: allow(TC-L002)", "");
    let findings = lint_source("par/src/lib.rs", &stripped, LintScope { concurrency: true });
    assert!(
        findings.iter().any(|f| f.rule == "TC-L002"),
        "waiver-stripped buggy path must trip TC-L002: {findings:?}"
    );
}

//! Wall-clock profiling is provably non-perturbing: a threads-backend run
//! with the transport probes enabled produces bit-identical modeled meters
//! (per the tiered comparison of `transport.rs`) and bit-identical counts
//! versus the same run with profiling off. The probes only *add* an
//! honest wall-clock layer — contention summaries, event rings, matched
//! send→recv flows — and a saturated probe ring degrades by counting
//! drops, never by stalling or perturbing the run.

use tricount_comm::{Counters, Routing, RunStats, SimOptions, TransportKind};
use tricount_core::config::Algorithm;
use tricount_core::dist::{run_on, run_on_profiled};
use tricount_core::seq::compact_forward;
use tricount_graph::dist::DistGraph;
use tricount_graph::Csr;
use tricount_obs::WallTimeline;

const PES: [usize; 3] = [1, 4, 9];

fn fixture() -> Csr {
    tricount_gen::rmat::rmat_default(8, 11)
}

fn threads_opts() -> SimOptions {
    SimOptions::on(TransportKind::Threads)
}

fn profiled_opts() -> SimOptions {
    SimOptions {
        wall_profile: true,
        ..SimOptions::on(TransportKind::Threads)
    }
}

/// The schedule-independent projection of a [`Counters`] record (see
/// `transport.rs` for the tier rationale).
fn schedule_free(c: &Counters) -> (u64, u64, u64, u64, u64) {
    (
        c.sent_words,
        c.recv_words,
        c.work_ops,
        c.coll_alpha_units,
        c.coll_word_units,
    )
}

fn totals_per_rank(stats: &RunStats) -> Vec<Counters> {
    let mut out = vec![Counters::default(); stats.p];
    for ph in &stats.phases {
        for (r, c) in ph.per_rank.iter().enumerate() {
            out[r].absorb(c);
        }
    }
    out
}

fn assert_stats_equiv(label: &str, routing: Routing, plain: &RunStats, prof: &RunStats) {
    assert_eq!(plain.p, prof.p, "{label}: rank count");
    assert_eq!(
        plain.phases.len(),
        prof.phases.len(),
        "{label}: phase structure"
    );
    match routing {
        Routing::Direct => {
            for (ps, pp) in plain.phases.iter().zip(&prof.phases) {
                assert_eq!(ps.name, pp.name, "{label}: phase order");
                for (rank, (cs, cp)) in ps.per_rank.iter().zip(&pp.per_rank).enumerate() {
                    assert_eq!(
                        cs, cp,
                        "{label}: profiling perturbed the meters, phase {} rank {rank}",
                        ps.name
                    );
                }
            }
        }
        Routing::Grid => {
            for (rank, (cs, cp)) in totals_per_rank(plain)
                .iter()
                .zip(&totals_per_rank(prof))
                .enumerate()
            {
                assert_eq!(
                    schedule_free(cs),
                    schedule_free(cp),
                    "{label}: profiling perturbed the invariant totals, rank {rank}"
                );
            }
        }
    }
}

/// Profiling on vs off: all seven variants over p ∈ {1, 4, 9} on the
/// threads backend count identically and keep their modeled meters
/// bit-identical (tiered per routing) — and the profiled run actually
/// carries contention meters.
#[test]
fn profiling_does_not_perturb_any_variant() {
    let g = fixture();
    let truth = compact_forward(&g).triangles;
    assert!(truth > 0, "fixture must contain triangles");
    for p in PES {
        for alg in Algorithm::all() {
            let cfg = alg.config();
            let label = format!("{} p={p}", alg.name());
            let plain = run_on(
                DistGraph::new_balanced_vertices(&g, p),
                alg,
                &cfg,
                &threads_opts(),
            )
            .unwrap_or_else(|e| panic!("{label} (plain) failed: {e}"))
            .0;
            let prof = run_on(
                DistGraph::new_balanced_vertices(&g, p),
                alg,
                &cfg,
                &profiled_opts(),
            )
            .unwrap_or_else(|e| panic!("{label} (profiled) failed: {e}"))
            .0;
            assert_eq!(plain.triangles, truth, "{label}: plain miscounted");
            assert_eq!(prof.triangles, truth, "{label}: profiled miscounted");
            assert_stats_equiv(&label, cfg.routing, &plain.stats, &prof.stats);
            assert!(
                plain.stats.contention.is_none(),
                "{label}: unprofiled run must not carry contention meters"
            );
            let c = prof
                .stats
                .contention
                .as_ref()
                .unwrap_or_else(|| panic!("{label}: profiled run lost its contention summary"));
            assert_eq!(c.p, p, "{label}: contention PE count");
            if p > 1 {
                assert!(
                    c.events_recorded > 0,
                    "{label}: a multi-PE run must record transport events"
                );
            }
        }
    }
}

/// The drained wall profile reconstructs a coherent timeline: every
/// send matches its receive by (src, dst, seq) when nothing overflowed,
/// and the dwell histogram carries one sample per matched flow.
#[test]
fn wall_timeline_matches_flows() {
    let g = fixture();
    let alg = Algorithm::Cetric;
    let (r, _, _, wall) = run_on_profiled(
        DistGraph::new_balanced_vertices(&g, 4),
        alg,
        &alg.config(),
        &profiled_opts(),
    )
    .expect("profiled run");
    let wall = wall.expect("threads + wall_profile must yield a profile");
    assert_eq!(wall.events_dropped(), 0, "default ring must not overflow");
    let t = WallTimeline::build(&wall);
    assert_eq!(t.p, 4);
    assert!(!t.flows.is_empty(), "cetric on 4 PEs exchanges messages");
    assert_eq!(t.unmatched_sends, 0, "every send found its receive");
    assert_eq!(t.unmatched_recvs, 0, "every receive found its send");
    assert_eq!(
        t.dwell.count(),
        t.flows.len() as u64,
        "one dwell sample per matched flow"
    );
    // The probe counts *transport* messages; the comm meters count the
    // application envelopes inside them. Aggregation packs several
    // envelopes per transport message, so flows lower-bound deliveries.
    assert!(
        t.flows.len() as u64 <= r.stats.totals().recv_messages,
        "transport messages ({}) cannot exceed metered envelopes ({})",
        t.flows.len(),
        r.stats.totals().recv_messages
    );
    for f in &t.flows {
        assert!(
            f.recv_nanos >= f.send_nanos,
            "flow {}→{} seq {} received before it was sent",
            f.src,
            f.dst,
            f.seq
        );
    }
}

/// A deliberately tiny probe ring overflows gracefully: drops are counted,
/// the run neither stalls nor miscounts, and the modeled meters are still
/// untouched.
#[test]
fn ring_overflow_drops_events_never_stalls() {
    let g = fixture();
    let truth = compact_forward(&g).triangles;
    let alg = Algorithm::Cetric;
    let opts = SimOptions {
        wall_profile: true,
        wall_ring_capacity: 4,
        ..SimOptions::on(TransportKind::Threads)
    };
    let (r, _, _, wall) = run_on_profiled(
        DistGraph::new_balanced_vertices(&g, 4),
        alg,
        &alg.config(),
        &opts,
    )
    .expect("overflowing profiled run still completes");
    assert_eq!(r.triangles, truth, "overflow must not affect the count");
    let wall = wall.expect("profile present");
    assert!(
        wall.events_dropped() > 0,
        "a 4-slot ring must overflow on this workload"
    );
    assert!(
        wall.events_recorded() <= 4 * 4,
        "ring capacity bounds retention"
    );
    // the timeline degrades to unmatched flows, not an error
    let t = WallTimeline::build(&wall);
    assert_eq!(t.events_dropped, wall.events_dropped());
    let plain = run_on(
        DistGraph::new_balanced_vertices(&g, 4),
        alg,
        &alg.config(),
        &threads_opts(),
    )
    .expect("plain run")
    .0;
    assert_stats_equiv(
        "overflowing ring",
        alg.config().routing,
        &plain.stats,
        &r.stats,
    );
}

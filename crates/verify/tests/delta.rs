//! Conformance of the dynamic-update protocol: a traced update run must
//! satisfy every invariant the linter knows — exactly-once envelope
//! delivery, the §IV-A memory bound, balanced collectives, reconciled
//! cost-model meters — and emit only registered phase names.

use std::sync::Mutex;

use tricount_comm::{SimOptions, TraceEvent};
use tricount_core::config::DistConfig;
use tricount_core::dist::delta::{apply_batch_sim, compact_rank};
use tricount_core::dist::phases;
use tricount_core::dist::residency::{build_residency, PreparedRank};
use tricount_delta::{random_batch, Overlay};
use tricount_graph::dist::DistGraph;
use tricount_verify::conformance::check_meters;
use tricount_verify::{check_phase_names, check_trace};

fn residency(g: &tricount_graph::Csr, p: usize, cfg: &DistConfig) -> Vec<PreparedRank> {
    let dg = DistGraph::new_balanced_vertices(g, p);
    build_residency(dg, cfg, &SimOptions::default()).0
}

/// A traced `apply_batch` run passes the full linter: every routed or
/// counted envelope is delivered exactly once, buffered volume respects
/// the configured δ bound, collectives are balanced across the three
/// phases, and the meters reconcile with the traced wire traffic.
#[test]
fn update_run_satisfies_all_invariants() {
    let cfg = DistConfig::default();
    for (p, seed) in [(2usize, 3u64), (4, 7), (8, 13)] {
        let g = tricount_gen::rgg2d_default(300, seed);
        let ranks = residency(&g, p, &cfg);
        let overlays: Vec<Mutex<Overlay>> = ranks
            .iter()
            .map(|r| Mutex::new(Overlay::for_local(&r.local)))
            .collect();
        let batch = random_batch(&g, 25, seed * 31).canonicalize();
        let (outcomes, stats, trace) =
            apply_batch_sim(&ranks, &overlays, &batch, &cfg, &SimOptions::traced());
        assert!(
            outcomes[0].inserted + outcomes[0].deleted > 0,
            "p={p}: batch must change something for the lint to be meaningful"
        );
        let trace = trace.expect("traced");
        let mut rep = check_trace(&trace);
        rep.violations.extend(check_meters(&trace, &stats));
        assert!(rep.is_clean(), "p={p}:\n{rep}");
        assert!(rep.envelopes_posted > 0, "p={p}: update run must exchange");
        assert_eq!(rep.envelopes_posted, rep.envelopes_delivered, "p={p}");
    }
}

/// Update and compaction runs emit only phase names from the central
/// registry — `update_route`, `update_count`, `update_ghost_refresh` and
/// `compaction` are part of the closed vocabulary.
#[test]
fn update_phases_are_registered() {
    let cfg = DistConfig::default();
    let g = tricount_gen::rgg2d_default(300, 5);
    let p = 4;
    let ranks = residency(&g, p, &cfg);
    let overlays: Vec<Mutex<Overlay>> = ranks
        .iter()
        .map(|r| Mutex::new(Overlay::for_local(&r.local)))
        .collect();
    let batch = random_batch(&g, 25, 41).canonicalize();
    let (_, _, trace) = apply_batch_sim(&ranks, &overlays, &batch, &cfg, &SimOptions::traced());
    let trace = trace.expect("traced");
    let violations = check_phase_names(&trace, phases::ALL);
    assert!(violations.is_empty(), "unregistered phases: {violations:?}");
    for want in [
        phases::UPDATE_ROUTE,
        phases::UPDATE_COUNT,
        phases::UPDATE_GHOST_REFRESH,
    ] {
        assert!(
            trace
                .per_pe
                .iter()
                .flatten()
                .any(|ev| matches!(ev, TraceEvent::PhaseEnded { name } if name == want)),
            "phase {want} missing from the update trace"
        );
    }

    // compaction, traced separately, is also clean and registered
    let sim = tricount_comm::run_sim(p, &SimOptions::traced(), |ctx: &mut tricount_comm::Ctx| {
        let mut ov = overlays[ctx.rank()].lock().unwrap();
        compact_rank(ctx, &ranks[ctx.rank()], &mut ov, &cfg)
    });
    let trace = sim.trace.expect("traced");
    assert!(check_trace(&trace).is_clean());
    assert!(check_phase_names(&trace, phases::ALL).is_empty());
    assert!(
        trace
            .per_pe
            .iter()
            .flatten()
            .any(|ev| matches!(ev, TraceEvent::PhaseEnded { name } if name == phases::COMPACTION)),
        "compaction phase missing"
    );
}

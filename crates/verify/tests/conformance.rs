//! End-to-end conformance: the unmutated runtime passes every invariant on
//! the real algorithm variants, and each injected mutation — at the runtime
//! level (fault injection) or the trace level (tampering) — is caught by the
//! dedicated invariant.

use tricount_comm::{
    run_sim, Ctx, Fault, MessageQueue, QueueConfig, Routing, SimOptions, Trace, TraceEvent,
};
use tricount_core::config::Algorithm;
use tricount_core::dist::run_on;
use tricount_core::seq::compact_forward;
use tricount_gen::rmat::rmat_default;
use tricount_graph::dist::DistGraph;
use tricount_verify::conformance::check_meters;
use tricount_verify::{check_trace, ConformanceReport, Violation};

/// Runs `alg` traced on `p` PEs over `g` and lints the full trace
/// (invariants 1–4) plus the cost-model meters (invariant 5).
fn traced_lint(g: &tricount_graph::Csr, p: usize, alg: Algorithm) -> (u64, ConformanceReport) {
    let dg = DistGraph::new_balanced_vertices(g, p);
    let (res, trace) = run_on(dg, alg, &alg.config(), &SimOptions::traced())
        .unwrap_or_else(|e| panic!("{} failed on p={p}: {e}", alg.name()));
    let trace = trace.expect("built with the `trace` feature");
    let mut rep = check_trace(&trace);
    rep.violations.extend(check_meters(&trace, &res.stats));
    (res.triangles, rep)
}

#[test]
fn unmutated_variants_pass_all_invariants() {
    let g = rmat_default(8, 7);
    let truth = compact_forward(&g).triangles;
    assert!(truth > 0, "test graph must contain triangles");
    for p in [4, 16] {
        for alg in [
            Algorithm::Unaggregated,
            Algorithm::Ditric,
            Algorithm::Ditric2,
            Algorithm::Cetric,
            Algorithm::Cetric2,
        ] {
            let (triangles, rep) = traced_lint(&g, p, alg);
            assert_eq!(triangles, truth, "{} p={p} miscounted", alg.name());
            assert!(rep.is_clean(), "{} p={p}:\n{rep}", alg.name());
        }
    }
}

#[test]
fn grid_variants_respect_sqrt_p_fanout() {
    // p = 16 is a full 4×4 grid: a PE's allowed flush set is its 3 row
    // peers plus its 3 column peers — at most 6 = 2(√p − 1) distinct peers.
    let g = rmat_default(8, 11);
    for alg in [Algorithm::Ditric2, Algorithm::Cetric2] {
        let (_, rep) = traced_lint(&g, 16, alg);
        assert!(rep.is_clean(), "{}:\n{rep}", alg.name());
        assert!(
            rep.max_grid_fanout <= 6,
            "{} contacted {} grid peers (limit 6)",
            alg.name(),
            rep.max_grid_fanout
        );
    }
}

/// A bespoke all-to-all rank program over the buffered queue: every PE
/// posts one envelope to every other PE and counts deliveries.
fn all_to_all_body(cfg: QueueConfig, fault: Option<(usize, Fault)>) -> impl Fn(&mut Ctx) -> u64 {
    move |ctx: &mut Ctx| {
        let me = ctx.rank();
        let p = ctx.num_ranks();
        let mut q = MessageQueue::new(ctx, cfg);
        if let Some((rank, fault)) = fault {
            if rank == me {
                q.inject_fault(fault);
            }
        }
        for d in 0..p {
            if d != me {
                q.post(ctx, d, &[me as u64, d as u64, 0xBEEF]);
            }
        }
        let mut got = 0u64;
        q.finish(ctx, &mut |_ctx, _env| got += 1);
        got
    }
}

#[test]
fn bespoke_exchange_is_clean() {
    let sim = run_sim(
        8,
        &SimOptions::traced(),
        all_to_all_body(QueueConfig::dynamic(16), None),
    );
    assert!(sim.output.results.iter().all(|&got| got == 7));
    let rep = tricount_verify::conformance::check_sim(&sim);
    assert!(rep.is_clean(), "{rep}");
    assert_eq!(rep.envelopes_posted, 8 * 7);
    assert_eq!(rep.envelopes_delivered, 8 * 7);
}

// ---- mutation 1 (runtime level): a dropped envelope terminates the
// exchange but is flagged as a missing delivery ----

#[test]
fn mutation_dropped_envelope_caught() {
    let sim = run_sim(
        4,
        &SimOptions::traced(),
        all_to_all_body(
            QueueConfig::dynamic(16),
            Some((1, Fault::DropEnvelope { index: 1 })),
        ),
    );
    // the exchange still terminates: 11 of 12 envelopes arrive
    let total: u64 = sim.output.results.iter().sum();
    assert_eq!(total, 11, "exactly one envelope must vanish");
    let rep = tricount_verify::conformance::check_sim(&sim);
    assert!(
        rep.violations
            .iter()
            .any(|v| matches!(v, Violation::MissingDelivery { count: 1, .. })),
        "linter must flag the dropped envelope:\n{rep}"
    );
    assert_eq!(rep.envelopes_posted, 12);
    assert_eq!(rep.envelopes_delivered, 11);
}

// ---- mutation 2 (runtime level): a skipped flush breaches the §IV-A
// memory bound ----

#[test]
fn mutation_skipped_flush_breaches_memory_bound() {
    // δ = 8, 3-word payloads → 5-word records. Unmutated, the buffer flushes
    // on crossing δ and stays ≤ δ + one record = 13 words. With the first
    // flush skipped the third post observes 15 buffered words.
    let body = |ctx: &mut Ctx| {
        let me = ctx.rank();
        let p = ctx.num_ranks();
        let mut q = MessageQueue::new(ctx, QueueConfig::dynamic(8));
        if me == 0 {
            q.inject_fault(Fault::SkipFlushOnce);
        }
        if me == 0 {
            for i in 0..6u64 {
                q.post(ctx, 1 + (i as usize % (p - 1)), &[i, i, i]);
            }
        }
        let mut got = 0u64;
        q.finish(ctx, &mut |_ctx, _env| got += 1);
        got
    };
    let sim = run_sim(4, &SimOptions::traced(), body);
    let rep = tricount_verify::conformance::check_sim(&sim);
    assert!(
        rep.violations
            .iter()
            .any(|v| matches!(v, Violation::MemoryBound { pe: 0, .. })),
        "linter must flag the δ-bound breach:\n{rep}"
    );
    // deliveries themselves are intact — only the bound was violated
    assert!(
        !rep.violations
            .iter()
            .any(|v| matches!(v, Violation::MissingDelivery { .. })),
        "{rep}"
    );
}

// ---- mutation 3 (trace level): collective epoch skew ----

#[test]
fn mutation_epoch_skew_caught() {
    let sim = run_sim(4, &SimOptions::traced(), |ctx: &mut Ctx| {
        ctx.barrier();
        ctx.allreduce_sum(&[1])[0]
    });
    let mut trace = sim.trace.expect("traced");
    assert!(check_trace(&trace).is_clean());
    // erase PE 2's barrier entry/exit, as if it had skipped the collective
    trace.per_pe[2].retain(|ev| {
        !matches!(
            ev,
            TraceEvent::CollEnter {
                kind: tricount_comm::CollKind::Barrier
            } | TraceEvent::CollExit {
                kind: tricount_comm::CollKind::Barrier
            }
        )
    });
    let rep = check_trace(&trace);
    assert!(
        rep.violations
            .iter()
            .any(|v| matches!(v, Violation::EpochMismatch { pe: 2, .. })),
        "linter must flag the epoch skew:\n{rep}"
    );
}

// ---- mutation 4 (trace level): unbalanced collective ----

#[test]
fn mutation_unbalanced_collective_caught() {
    let sim = run_sim(2, &SimOptions::traced(), |ctx: &mut Ctx| ctx.barrier());
    let mut trace = sim.trace.expect("traced");
    // drop PE 1's barrier *exit* only
    let exit_pos = trace.per_pe[1]
        .iter()
        .position(|ev| matches!(ev, TraceEvent::CollExit { .. }))
        .expect("barrier exit recorded");
    trace.per_pe[1].remove(exit_pos);
    let rep = check_trace(&trace);
    assert!(
        rep.violations
            .iter()
            .any(|v| matches!(v, Violation::UnbalancedCollective { pe: 1, .. })),
        "linter must flag the missing exit:\n{rep}"
    );
}

// ---- mutation 5 (trace level): grid flush to a peer outside the
// row/column set ----

#[test]
fn mutation_grid_fanout_caught() {
    let sim = run_sim(
        16,
        &SimOptions::traced(),
        all_to_all_body(
            QueueConfig {
                delta: Some(8),
                routing: Routing::Grid,
            },
            None,
        ),
    );
    let mut trace = sim.trace.expect("traced");
    assert!(check_trace(&trace).is_clean());
    // PE 0 (row {1,2,3}, column {4,8,12} in the 4×4 grid) flushes only to
    // those peers; rewrite one flush to PE 5 — a diagonal shortcut the
    // indirection scheme forbids.
    let flush = trace.per_pe[0]
        .iter_mut()
        .find_map(|ev| match ev {
            TraceEvent::Flushed { peer, .. } => Some(peer),
            _ => None,
        })
        .expect("PE 0 flushed at least once");
    *flush = 5;
    let rep = check_trace(&trace);
    assert!(
        rep.violations
            .iter()
            .any(|v| matches!(v, Violation::GridFanout { pe: 0, peer: 5 })),
        "linter must flag the off-grid flush:\n{rep}"
    );
}

// ---- mutation 6 (trace level): cost-model meters disagree with the
// traced wire traffic ----

#[test]
fn mutation_meter_mismatch_caught() {
    let sim = run_sim(4, &SimOptions::traced(), |ctx: &mut Ctx| {
        let to = (ctx.rank() + 1) % ctx.num_ranks();
        ctx.send_raw(to, vec![1, 2, 3]);
        let m = loop {
            if let Some(m) = ctx.try_recv_raw() {
                break m;
            }
            std::thread::yield_now();
        };
        m.words.len() as u64
    });
    let mut trace = sim.trace.clone().expect("traced");
    assert!(check_meters(&trace, &sim.output.stats).is_empty());
    // inflate one traced send by a word: the meters no longer reconcile
    let words = trace.per_pe[3]
        .iter_mut()
        .find_map(|ev| match ev {
            TraceEvent::Sent { words, .. } => Some(words),
            _ => None,
        })
        .expect("PE 3 sent");
    *words += 1;
    let violations = check_meters(&trace, &sim.output.stats);
    assert!(
        violations.iter().any(|v| matches!(
            v,
            Violation::MeterMismatch {
                pe: 3,
                direction: "sent",
                ..
            }
        )),
        "meter check must flag the extra word: {violations:?}"
    );
}

// ---- invariant 7: closed phase vocabulary ----

#[test]
fn all_variants_emit_only_registered_phase_names() {
    use tricount_core::dist::phases;
    let g = rmat_default(8, 13);
    for alg in Algorithm::all() {
        let dg = DistGraph::new_balanced_vertices(&g, 4);
        let (_, trace) = run_on(dg, alg, &alg.config(), &SimOptions::traced())
            .unwrap_or_else(|e| panic!("{} failed: {e}", alg.name()));
        let trace = trace.expect("traced");
        let violations = tricount_verify::check_phase_names(&trace, phases::ALL);
        assert!(
            violations.is_empty(),
            "{} emitted unregistered phase names: {violations:?}",
            alg.name()
        );
        assert!(
            trace
                .per_pe
                .iter()
                .flatten()
                .any(|ev| matches!(ev, TraceEvent::PhaseEnded { .. })),
            "{} recorded no phase boundaries at all",
            alg.name()
        );
    }
}

#[test]
fn mutation_rogue_phase_name_caught() {
    use tricount_core::dist::phases;
    let g = rmat_default(8, 13);
    let dg = DistGraph::new_balanced_vertices(&g, 4);
    let (_, trace) = run_on(
        dg,
        Algorithm::Cetric,
        &Algorithm::Cetric.config(),
        &SimOptions::traced(),
    )
    .unwrap();
    let mut trace = trace.expect("traced");
    // rewrite one PhaseEnded to a name outside the registry, as if a driver
    // bypassed the phases module
    let name = trace.per_pe[2]
        .iter_mut()
        .find_map(|ev| match ev {
            TraceEvent::PhaseEnded { name } => Some(name),
            _ => None,
        })
        .expect("PE 2 ended a phase");
    *name = "warmup".to_string();
    let violations = tricount_verify::check_phase_names(&trace, phases::ALL);
    assert!(
        violations
            .iter()
            .any(|v| matches!(v, Violation::UnregisteredPhase { pe: 2, name } if name == "warmup")),
        "check must flag the rogue phase name: {violations:?}"
    );
}

/// The linter consumes traces — make sure an owned [`Trace`] round-trips
/// through the report rendering without a panic (smoke test for Display).
#[test]
fn report_renders() {
    let rep = check_trace(&Trace::default());
    let s = rep.to_string();
    assert!(s.contains("conformance"));
}

//! Cross-backend transport equivalence: the metered simulator and the
//! threads backend are the *same machine* observed two ways. Every
//! algorithm variant, the LCC/support pipelines and the dynamic-update
//! protocol must produce bit-identical answers on both; the comm meters
//! must agree wherever the protocol's traffic is schedule-independent.
//!
//! Comparison tiers (mirroring the schedule-perturbation precedent):
//!
//! * **Counts / answers** — bit-equal on every variant, always.
//! * **Direct-routing variants** — full per-phase, per-rank [`Counters`]
//!   equality: without relaying, what a PE sends is a function of its
//!   local state only.
//! * **Grid-routing variants** — relayed message *counts* depend on which
//!   envelopes share a proxy flush, and visitor-driven protocols process
//!   arrivals in whatever phase they land in, so neither message counts
//!   nor per-phase attribution is schedule-independent. What must agree
//!   are the per-rank *run totals* of words, local work and collective
//!   charges.
//!
//! Untimed runs only: the overlap-aware `sim_clock` interleaves `max`
//! (arrivals) with `add` (work), which does not commute across schedules.

use std::sync::Mutex;
use std::time::Duration;

use tricount_comm::{run_sim, Counters, Routing, RunStats, SimOptions, TransportKind};
use tricount_core::config::{Algorithm, DistConfig};
use tricount_core::dist::delta::apply_batch_sim;
use tricount_core::dist::residency::{build_residency, PreparedRank};
use tricount_core::dist::support::edge_support_rank;
use tricount_core::dist::{lcc, run_on, run_on_guarded};
use tricount_core::seq::compact_forward;
use tricount_delta::{random_batch, Overlay};
use tricount_graph::dist::{DistGraph, LocalGraph};
use tricount_graph::Csr;
use tricount_verify::check_hb;

const PES: [usize; 4] = [1, 4, 9, 16];

fn fixture() -> Csr {
    tricount_gen::rmat::rmat_default(8, 11)
}

fn sim_opts() -> SimOptions {
    SimOptions::default()
}

fn threads_opts() -> SimOptions {
    SimOptions::on(TransportKind::Threads)
}

/// The schedule-independent projection of a [`Counters`] record: words
/// moved, local work, and collective charges (message counts and buffer
/// peaks vary with relay flush timing under grid routing).
fn schedule_free(c: &Counters) -> (u64, u64, u64, u64, u64) {
    (
        c.sent_words,
        c.recv_words,
        c.work_ops,
        c.coll_alpha_units,
        c.coll_word_units,
    )
}

/// Folds per-phase counters into one record per rank.
fn totals_per_rank(stats: &RunStats) -> Vec<Counters> {
    let mut out = vec![Counters::default(); stats.p];
    for ph in &stats.phases {
        for (r, c) in ph.per_rank.iter().enumerate() {
            out[r].absorb(c);
        }
    }
    out
}

/// Asserts the meter agreement tier appropriate for `routing`.
fn assert_stats_equiv(label: &str, routing: Routing, sim: &RunStats, thr: &RunStats) {
    assert_eq!(sim.p, thr.p, "{label}: rank count");
    assert_eq!(
        sim.phases.len(),
        thr.phases.len(),
        "{label}: phase structure"
    );
    match routing {
        Routing::Direct => {
            for (ps, pt) in sim.phases.iter().zip(&thr.phases) {
                assert_eq!(ps.name, pt.name, "{label}: phase order");
                for (rank, (cs, ct)) in ps.per_rank.iter().zip(&pt.per_rank).enumerate() {
                    assert_eq!(
                        cs, ct,
                        "{label}: counters diverged, phase {} rank {rank}",
                        ps.name
                    );
                }
            }
        }
        Routing::Grid => {
            for (rank, (cs, ct)) in totals_per_rank(sim)
                .iter()
                .zip(&totals_per_rank(thr))
                .enumerate()
            {
                assert_eq!(
                    schedule_free(cs),
                    schedule_free(ct),
                    "{label}: invariant meter totals diverged, rank {rank}"
                );
            }
        }
    }
}

/// All seven variants produce bit-identical counts on both backends over
/// p ∈ {1, 4, 9, 16}, with tiered meter agreement.
#[test]
fn all_variants_bit_equal_across_backends() {
    let g = fixture();
    let truth = compact_forward(&g).triangles;
    assert!(truth > 0, "fixture must contain triangles");
    for p in PES {
        for alg in Algorithm::all() {
            let cfg = alg.config();
            let run = |opts: &SimOptions| {
                run_on(DistGraph::new_balanced_vertices(&g, p), alg, &cfg, opts)
                    .unwrap_or_else(|e| panic!("{} p={p} failed: {e}", alg.name()))
                    .0
            };
            let sim = run(&sim_opts());
            let thr = run(&threads_opts());
            assert_eq!(sim.triangles, truth, "{} p={p} sim miscounted", alg.name());
            assert_eq!(
                thr.triangles,
                truth,
                "{} p={p} threads miscounted",
                alg.name()
            );
            let label = format!("{} p={p}", alg.name());
            assert_stats_equiv(&label, cfg.routing, &sim.stats, &thr.stats);
        }
    }
}

/// The LCC pipeline agrees per vertex on both backends (selected via
/// `DistConfig.transport`, the config-plumbing path the CLI uses).
#[test]
fn lcc_bit_equal_across_backends() {
    let g = fixture();
    let per_backend: Vec<_> = [TransportKind::Sim, TransportKind::Threads]
        .into_iter()
        .map(|transport| {
            let cfg = DistConfig {
                transport,
                ..DistConfig::default()
            };
            lcc::lcc(&g, 4, &cfg)
        })
        .collect();
    assert_eq!(per_backend[0].triangles, per_backend[1].triangles);
    assert_eq!(per_backend[0].per_vertex, per_backend[1].per_vertex);
    assert_eq!(per_backend[0].lcc, per_backend[1].lcc);
}

/// The edge-support protocol answers identically on both backends.
#[test]
fn edge_support_bit_equal_across_backends() {
    let g = fixture();
    let p = 4;
    let cfg = DistConfig::default();
    let queries: Vec<(u64, u64)> = vec![(0, 1), (1, 2), (5, 9), (3, 200), (200, 3)];
    let run = |opts: &SimOptions| -> Vec<Vec<u64>> {
        let dg = DistGraph::new_balanced_vertices(&g, p);
        let cells: Vec<Mutex<Option<LocalGraph>>> = dg
            .into_locals()
            .into_iter()
            .map(|l| Mutex::new(Some(l)))
            .collect();
        let q = queries.clone();
        run_sim(p, opts, |ctx| {
            let lg = cells[ctx.rank()].lock().unwrap().take().unwrap();
            edge_support_rank(ctx, &lg, &q, &cfg)
        })
        .output
        .results
    };
    let sim = run(&sim_opts());
    let thr = run(&threads_opts());
    assert_eq!(sim, thr, "edge support answers diverged across backends");
}

/// One dynamic-update program: same residency, same batch, both backends —
/// identical outcomes (insertions, deletions, triangle deltas) and
/// identical schedule-free meters.
#[test]
fn delta_update_bit_equal_across_backends() {
    let cfg = DistConfig::default();
    let p = 4;
    let g = tricount_gen::rgg2d_default(300, 7);
    let batch = random_batch(&g, 25, 217).canonicalize();
    let run = |opts: &SimOptions| {
        let dg = DistGraph::new_balanced_vertices(&g, p);
        let (ranks, _): (Vec<PreparedRank>, _) = build_residency(dg, &cfg, opts);
        let overlays: Vec<Mutex<Overlay>> = ranks
            .iter()
            .map(|r| Mutex::new(Overlay::for_local(&r.local)))
            .collect();
        let (outcomes, stats, _) = apply_batch_sim(&ranks, &overlays, &batch, &cfg, opts);
        (outcomes, stats)
    };
    let (sim_out, sim_stats) = run(&sim_opts());
    let (thr_out, thr_stats) = run(&threads_opts());
    for (rank, (s, t)) in sim_out.iter().zip(&thr_out).enumerate() {
        assert_eq!(s.inserted, t.inserted, "rank {rank} insertions");
        assert_eq!(s.deleted, t.deleted, "rank {rank} deletions");
        assert_eq!(s.noops, t.noops, "rank {rank} no-ops");
        assert_eq!(s.triangles_added, t.triangles_added, "rank {rank} gains");
        assert_eq!(
            s.triangles_removed, t.triangles_removed,
            "rank {rank} losses"
        );
        assert_eq!(s.tail_effective, t.tail_effective, "rank {rank} tails");
    }
    assert_stats_equiv("delta-update", cfg.routing, &sim_stats, &thr_stats);
}

/// A panicking PE on the threads backend poisons the transport and takes
/// the whole run down *promptly* — the supervisor re-raises instead of
/// leaking sibling rank threads spinning at a barrier.
#[test]
fn threads_backend_panic_shuts_down_cleanly() {
    let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_sim(4, &threads_opts(), |ctx| {
            if ctx.rank() == 2 {
                panic!("injected rank failure");
            }
            // Survivors head into a barrier that rank 2 will never reach;
            // the poison must wake them instead of spinning forever.
            ctx.barrier();
            ctx.rank()
        })
    }));
    assert!(res.is_err(), "a rank panic must fail the whole run");
}

/// The deadlock watchdog composes with the threads backend: a healthy run
/// under a finite timeout completes with the right answer.
#[test]
fn run_guarded_on_threads_backend() {
    let g = fixture();
    let truth = compact_forward(&g).triangles;
    let cfg = Algorithm::Cetric.config();
    let r = run_on_guarded(
        DistGraph::new_balanced_vertices(&g, 4),
        Algorithm::Cetric,
        &cfg,
        &threads_opts(),
        Duration::from_secs(30),
    )
    .expect("guarded threads run");
    assert_eq!(r.triangles, truth);
}

/// A traced threads-backend run is causally consistent: every receive
/// happens-after its send, collective epochs are barrier-ordered, and the
/// vector-clock sweep consumes the whole trace — i.e. the real-parallel
/// data plane upholds the ordering contract the simulator guarantees by
/// construction.
#[test]
fn threads_backend_trace_is_hb_consistent() {
    let g = fixture();
    let opts = SimOptions {
        transport: TransportKind::Threads,
        ..SimOptions::traced()
    };
    for alg in [Algorithm::Ditric, Algorithm::Cetric2] {
        let (_, trace) = run_on(
            DistGraph::new_balanced_vertices(&g, 4),
            alg,
            &alg.config(),
            &opts,
        )
        .unwrap_or_else(|e| panic!("{} failed: {e}", alg.name()));
        let trace = trace.expect("built with the `trace` feature");
        let rep = check_hb(&trace);
        assert!(rep.is_clean(), "{}:\n{rep}", alg.name());
        assert_eq!(rep.events, trace.len(), "{}: full sweep", alg.name());
    }
}

/// Wall clock is measured, not modeled: a threads run reports nonzero
/// per-phase wall time while its modeled meters stay bit-equal to sim's.
#[test]
fn threads_backend_reports_wall_alongside_modeled() {
    let g = fixture();
    let cfg = Algorithm::Ditric.config();
    let (r, _) = run_on(
        DistGraph::new_balanced_vertices(&g, 4),
        Algorithm::Ditric,
        &cfg,
        &threads_opts(),
    )
    .expect("threads run");
    assert!(
        r.stats.wall_time() > 0.0,
        "threads backend must record wall time"
    );
    // modeled meters are still populated and schedule-independent
    assert!(r.stats.totals().sent_words > 0);
}

//! Determinism and deadlock-diagnosis acceptance tests: the real algorithm
//! variants produce bit-identical counts under ≥8 seeded schedule
//! permutations at p ∈ {4, 16}, and a stalled collective is *reported* by
//! the watchdog instead of hanging the suite.

use std::time::Duration;

use tricount_comm::{Ctx, MessageQueue, QueueConfig, SimOptions};
use tricount_core::config::Algorithm;
use tricount_core::dist::run_on;
use tricount_core::seq::compact_forward;
use tricount_gen::rmat::rmat_default;
use tricount_graph::dist::DistGraph;
use tricount_verify::determinism::{check_schedule_independence, run_guarded};

const SEEDS: [u64; 8] = [1, 2, 3, 5, 8, 13, 21, 34];

fn count_under(g: &tricount_graph::Csr, p: usize, alg: Algorithm, opts: &SimOptions) -> u64 {
    let dg = DistGraph::new_balanced_vertices(g, p);
    run_on(dg, alg, &alg.config(), opts)
        .unwrap_or_else(|e| panic!("{} failed on p={p}: {e}", alg.name()))
        .0
        .triangles
}

fn assert_schedule_independent(p: usize) {
    let g = rmat_default(8, 3);
    let truth = compact_forward(&g).triangles;
    assert!(truth > 0, "test graph must contain triangles");
    for alg in [
        Algorithm::Ditric,
        Algorithm::Ditric2,
        Algorithm::Cetric,
        Algorithm::Cetric2,
    ] {
        let baseline = count_under(&g, p, alg, &SimOptions::default());
        assert_eq!(baseline, truth, "{} p={p} miscounted", alg.name());
        for seed in SEEDS {
            let perturbed = count_under(&g, p, alg, &SimOptions::perturbed(seed));
            assert_eq!(
                perturbed,
                baseline,
                "{} p={p} diverged under schedule seed {seed}",
                alg.name()
            );
        }
    }
}

#[test]
fn variants_schedule_independent_p4() {
    assert_schedule_independent(4);
}

#[test]
fn variants_schedule_independent_p16() {
    assert_schedule_independent(16);
}

/// The harness API itself, driven by a queue-based exchange: posting
/// rank-tagged payloads all-to-all and summing them is commutative, so
/// every seeded schedule must agree.
#[test]
fn queue_exchange_schedule_independent() {
    let results =
        check_schedule_independence(8, &SEEDS, &SimOptions::default(), |ctx: &mut Ctx| {
            let me = ctx.rank();
            let p = ctx.num_ranks();
            let mut q = MessageQueue::new(ctx, QueueConfig::dynamic(8));
            for d in 0..p {
                if d != me {
                    q.post(ctx, d, &[(me as u64 + 1) * 100]);
                }
            }
            let mut sum = 0u64;
            q.finish(ctx, &mut |_ctx, env| sum += env.payload[0]);
            sum
        })
        .expect("commutative exchange must be schedule-independent");
    for (me, sum) in results.iter().enumerate() {
        let expect: u64 = (0..8u64).map(|r| (r + 1) * 100).sum::<u64>() - (me as u64 + 1) * 100;
        assert_eq!(*sum, expect);
    }
}

/// A PE that skips a collective must produce a deadlock report naming the
/// blocked operation — not a hung test suite.
#[test]
fn stalled_collective_is_reported() {
    let report = run_guarded(
        4,
        &SimOptions::default(),
        Duration::from_millis(300),
        |ctx: &mut Ctx| {
            if ctx.rank() != 0 {
                ctx.allreduce_sum(&[1]);
            }
        },
    )
    .expect_err("must diagnose the stall");
    assert_eq!(report.pes.len(), 4);
    assert!(
        report.pes.iter().any(|pe| !pe.done),
        "some PE must be stuck: {report}"
    );
    let rendered = report.to_string();
    assert!(rendered.contains("deadlock"), "{rendered}");
}

/// A sparse exchange where one PE never calls `finish` stalls the others in
/// the termination protocol; the watchdog dumps their state.
#[test]
fn stalled_sparse_exchange_is_reported() {
    let report = run_guarded(
        4,
        &SimOptions::default(),
        Duration::from_millis(300),
        |ctx: &mut Ctx| {
            let mut q = MessageQueue::new(ctx, QueueConfig::dynamic(8));
            if ctx.rank() != 0 {
                q.finish(ctx, &mut |_ctx, _env| {});
            }
        },
    )
    .expect_err("must diagnose the stall");
    assert!(
        report
            .pes
            .iter()
            .any(|pe| !pe.done && pe.op == "sparse_finish"),
        "some PE must be stuck in the termination protocol: {report}"
    );
}

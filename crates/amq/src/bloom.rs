//! The textbook Bloom filter: `m` bits, `k` independent hash functions.

use crate::{mix64, Amq};

/// A standard Bloom filter over `u64` keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    bits: Vec<u64>,
    num_bits: u64,
    k: u32,
    inserted: u64,
}

impl BloomFilter {
    /// Creates a filter with `bits_per_key · expected_keys` bits and the
    /// optimal hash count `k = ln 2 · bits_per_key` (at least 1).
    pub fn new(expected_keys: usize, bits_per_key: f64) -> Self {
        assert!(bits_per_key > 0.0);
        let num_bits = ((expected_keys.max(1) as f64 * bits_per_key).ceil() as u64).max(64);
        let k = ((bits_per_key * std::f64::consts::LN_2).round() as u32).max(1);
        Self::with_geometry(num_bits, k)
    }

    /// Creates a filter with explicit geometry.
    pub fn with_geometry(num_bits: u64, k: u32) -> Self {
        let words = num_bits.div_ceil(64) as usize;
        BloomFilter {
            bits: vec![0u64; words],
            num_bits: words as u64 * 64,
            k,
            inserted: 0,
        }
    }

    /// Reconstructs a filter from its wire format (see [`Amq::to_words`]).
    pub fn from_words(words: &[u64]) -> Self {
        assert!(words.len() >= 2, "malformed bloom wire format");
        let k = words[0] as u32;
        let inserted = words[1];
        let bits: Vec<u64> = words[2..].to_vec();
        BloomFilter {
            num_bits: bits.len() as u64 * 64,
            bits,
            k,
            inserted,
        }
    }

    /// Number of keys inserted so far.
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// Size of the bit array in machine words.
    pub fn num_words(&self) -> usize {
        self.bits.len()
    }

    #[inline]
    fn bit_index(&self, key: u64, i: u32) -> u64 {
        // k independent hashes per key. Double hashing (h1 + i·h2) would be
        // cheaper but its arithmetic-progression probe sets measurably
        // exceed the ideal false-positive rate at the tiny filter sizes the
        // approximate global phase ships, which would bias the truthful
        // estimator.
        mix64(key ^ (i as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93)) % self.num_bits
    }

    #[inline]
    fn set_bit(&mut self, idx: u64) {
        self.bits[(idx / 64) as usize] |= 1u64 << (idx % 64);
    }

    #[inline]
    fn get_bit(&self, idx: u64) -> bool {
        self.bits[(idx / 64) as usize] & (1u64 << (idx % 64)) != 0
    }
}

impl Amq for BloomFilter {
    fn insert(&mut self, key: u64) {
        for i in 0..self.k {
            let idx = self.bit_index(key, i);
            self.set_bit(idx);
        }
        self.inserted += 1;
    }

    fn contains(&self, key: u64) -> bool {
        (0..self.k).all(|i| self.get_bit(self.bit_index(key, i)))
    }

    /// `ρ^k` with `ρ` the *realised* fraction of set bits. Using the
    /// measured density instead of the textbook `(1 − e^{−kn/m})^k`
    /// self-calibrates for in-filter hash collisions, which matters for the
    /// truthful estimator's bias at the small filter sizes shipped per
    /// neighborhood.
    fn false_positive_rate(&self) -> f64 {
        let set: u32 = self.bits.iter().map(|w| w.count_ones()).sum();
        let rho = set as f64 / self.num_bits as f64;
        rho.powf(self.k as f64)
    }

    fn to_words(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(2 + self.bits.len());
        out.push(self.k as u64);
        out.push(self.inserted);
        out.extend_from_slice(&self.bits);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::new(1000, 8.0);
        for key in (0..1000u64).map(|i| i * 7 + 3) {
            f.insert(key);
        }
        for key in (0..1000u64).map(|i| i * 7 + 3) {
            assert!(f.contains(key));
        }
    }

    #[test]
    fn false_positive_rate_near_prediction() {
        let n = 2000usize;
        let mut f = BloomFilter::new(n, 10.0);
        for key in 0..n as u64 {
            f.insert(key);
        }
        let trials = 20_000u64;
        let fp = (0..trials)
            .map(|i| 1_000_000 + i * 13)
            .filter(|&k| f.contains(k))
            .count() as f64
            / trials as f64;
        let predicted = f.false_positive_rate();
        assert!(predicted < 0.02, "10 bits/key should give <2%: {predicted}");
        assert!(
            (fp - predicted).abs() < 0.01,
            "measured {fp} vs predicted {predicted}"
        );
    }

    #[test]
    fn wire_roundtrip() {
        let mut f = BloomFilter::new(100, 8.0);
        for key in 0..100u64 {
            f.insert(key * 3);
        }
        let words = f.to_words();
        let g = BloomFilter::from_words(&words);
        assert_eq!(f, g);
        for key in 0..100u64 {
            assert!(g.contains(key * 3));
        }
    }

    #[test]
    fn empty_filter_rejects_everything() {
        let f = BloomFilter::new(10, 8.0);
        assert!(!f.contains(42));
        assert_eq!(f.false_positive_rate(), 0.0);
    }

    #[test]
    fn tiny_geometry_saturates_gracefully() {
        let mut f = BloomFilter::with_geometry(64, 2);
        for key in 0..1000u64 {
            f.insert(key);
        }
        assert!(f.false_positive_rate() > 0.9);
        assert!(f.contains(123)); // saturated → everything positive
    }
}

//! Approximate membership query (AMQ) data structures for the approximate
//! triangle counting extension of paper §IV-E.
//!
//! For type-3 triangles, CETRIC can send an AMQ `A'(v)` instead of the exact
//! neighborhood `A(v)`; the receiver approximates `|A(u) ∩ A(v)|` by querying
//! every member of `A(u)` against `A'(v)` and counting positives. AMQs never
//! yield false negatives, so the count is an overestimate; subtracting the
//! expected number of false positives yields the *truthful estimator* the
//! paper describes.
//!
//! Two implementations are provided:
//! * [`BloomFilter`] — the textbook `k`-hash-function filter.
//! * [`SingleShotBloom`] — a blocked, single-probe-per-block variant in the
//!   spirit of the cache-/space-efficient filters of Putze, Sanders &
//!   Singler, which the paper's footnote 2 suggests as the more appropriate
//!   choice (lower query cost, compact serialisation).

#![warn(missing_docs)]

pub mod bloom;
pub mod single_shot;

pub use bloom::BloomFilter;
pub use single_shot::SingleShotBloom;

/// Common interface of the AMQs used by the approximate global phase.
pub trait Amq {
    /// Inserts a key.
    fn insert(&mut self, key: u64);
    /// Queries a key; false ⇒ definitely absent, true ⇒ probably present.
    fn contains(&self, key: u64) -> bool;
    /// The false-positive probability for keys *not* inserted, given the
    /// current fill; used by the truthful estimator.
    fn false_positive_rate(&self) -> f64;
    /// Serialises to machine words for transmission (paper model: volume is
    /// counted in words).
    fn to_words(&self) -> Vec<u64>;
}

/// The truthful estimator of §IV-E: given `positives` hits out of `queries`
/// probes against a filter with false-positive rate `fpr`, the expected
/// positives are `true + (queries − true)·fpr`; solving for `true` corrects
/// the overestimate.
pub fn truthful_estimate(positives: u64, queries: u64, fpr: f64) -> f64 {
    truthful_estimate_unclamped(positives, queries, fpr).max(0.0)
}

/// [`truthful_estimate`] without the clamp at zero. Per-query-batch
/// corrections should use this and clamp only the *aggregate*: clamping each
/// small batch at zero discards the negative half of the noise and biases
/// the sum upward (Jensen).
pub fn truthful_estimate_unclamped(positives: u64, queries: u64, fpr: f64) -> f64 {
    if queries == 0 {
        return 0.0;
    }
    if fpr >= 1.0 {
        return positives as f64;
    }
    let pos = positives as f64;
    let q = queries as f64;
    (pos - q * fpr) / (1.0 - fpr)
}

/// 64-bit mix (SplitMix64 finaliser) used to derive the hash functions.
#[inline]
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthful_estimate_corrects_overcount() {
        // 100 queries, 28 positives, fpr 4%:
        // E[pos] = t + (100−t)·0.04 = 28 → t = 25.
        let est = truthful_estimate(28, 100, 0.04);
        assert!((est - 25.0).abs() < 1e-9, "{est}");
    }

    #[test]
    fn truthful_estimate_edge_cases() {
        assert_eq!(truthful_estimate(0, 0, 0.5), 0.0);
        assert_eq!(truthful_estimate(10, 10, 0.0), 10.0);
        // all positives explained by noise → clamp at 0
        assert_eq!(truthful_estimate(1, 100, 0.5), 0.0);
        // degenerate saturated filter
        assert_eq!(truthful_estimate(7, 10, 1.0), 7.0);
    }

    #[test]
    fn mix64_spreads_bits() {
        let a = mix64(1);
        let b = mix64(2);
        assert_ne!(a, b);
        assert!((a ^ b).count_ones() > 10);
    }
}

//! A blocked, single-probe Bloom filter in the spirit of the
//! cache-/space-efficient filters of Putze, Sanders & Singler (the paper's
//! footnote 2 recommendation for the approximate extension).
//!
//! Each key maps to exactly one 64-bit block and sets `k` bits *inside that
//! block* (one cache line / one machine word per query — "single shot").
//! Queries touch a single word, making the receiver-side intersection probe
//! O(1) per candidate with a tiny constant.

use crate::{mix64, Amq};

/// A blocked single-probe Bloom filter over `u64` keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SingleShotBloom {
    blocks: Vec<u64>,
    k: u32,
    inserted: u64,
}

impl SingleShotBloom {
    /// Creates a filter sized for `expected_keys` at roughly `bits_per_key`
    /// bits per key, with `k` bits set per key inside its block.
    pub fn new(expected_keys: usize, bits_per_key: f64, k: u32) -> Self {
        assert!(bits_per_key > 0.0 && (1..=32).contains(&k));
        let num_blocks =
            ((expected_keys.max(1) as f64 * bits_per_key / 64.0).ceil() as usize).max(1);
        SingleShotBloom {
            blocks: vec![0u64; num_blocks],
            k,
            inserted: 0,
        }
    }

    /// Reconstructs from the wire format.
    pub fn from_words(words: &[u64]) -> Self {
        assert!(words.len() >= 2, "malformed single-shot wire format");
        SingleShotBloom {
            k: words[0] as u32,
            inserted: words[1],
            blocks: words[2..].to_vec(),
        }
    }

    /// Number of keys inserted.
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// Size in machine words.
    pub fn num_words(&self) -> usize {
        self.blocks.len()
    }

    /// The 64-bit mask a key sets/tests within its block.
    #[inline]
    fn mask_and_block(&self, key: u64) -> (usize, u64) {
        let h = mix64(key);
        let block = (h % self.blocks.len() as u64) as usize;
        // k independently hashed in-block bit positions (correlated slices
        // of one hash would inflate the false-positive rate past the
        // density-based prediction the estimator relies on)
        let mut mask = 0u64;
        for i in 0..self.k as u64 {
            mask |= 1u64 << (mix64(h ^ i.wrapping_mul(0xA24B_AED4_963E_E407)) & 63);
        }
        (block, mask)
    }
}

impl Amq for SingleShotBloom {
    fn insert(&mut self, key: u64) {
        let (b, mask) = self.mask_and_block(key);
        self.blocks[b] |= mask;
        self.inserted += 1;
    }

    fn contains(&self, key: u64) -> bool {
        let (b, mask) = self.mask_and_block(key);
        self.blocks[b] & mask == mask
    }

    /// Estimated from the *per-block* realised bit densities: a foreign key
    /// lands in block `b` uniformly; its mask is covered iff **each of its
    /// `k` independent draws** lands on a set bit (duplicate draws are
    /// covered together), i.e. with probability `ρ_b^k` exactly. The rate is
    /// the mean over blocks; per-block densities matter because block loads
    /// are skewed for small neighborhoods.
    fn false_positive_rate(&self) -> f64 {
        let k = self.k as i32;
        let sum: f64 = self
            .blocks
            .iter()
            .map(|b| (b.count_ones() as f64 / 64.0).powi(k))
            .sum();
        sum / self.blocks.len() as f64
    }

    fn to_words(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(2 + self.blocks.len());
        out.push(self.k as u64);
        out.push(self.inserted);
        out.extend_from_slice(&self.blocks);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut f = SingleShotBloom::new(500, 12.0, 4);
        for key in (0..500u64).map(|i| i * 11 + 1) {
            f.insert(key);
        }
        for key in (0..500u64).map(|i| i * 11 + 1) {
            assert!(f.contains(key));
        }
    }

    #[test]
    fn false_positive_rate_reasonable() {
        let n = 2000usize;
        let mut f = SingleShotBloom::new(n, 12.0, 4);
        for key in 0..n as u64 {
            f.insert(key);
        }
        let trials = 20_000u64;
        let fp = (0..trials)
            .map(|i| 5_000_000 + i * 17)
            .filter(|&k| f.contains(k))
            .count() as f64
            / trials as f64;
        let predicted = f.false_positive_rate();
        assert!(fp < 0.1, "measured fp {fp} too high for 12 bits/key");
        assert!(
            (fp - predicted).abs() < 0.05,
            "measured {fp} vs predicted {predicted}"
        );
    }

    #[test]
    fn wire_roundtrip() {
        let mut f = SingleShotBloom::new(64, 10.0, 3);
        for key in 0..64u64 {
            f.insert(key * 5);
        }
        let g = SingleShotBloom::from_words(&f.to_words());
        assert_eq!(f, g);
    }

    #[test]
    fn more_compact_than_standard_bloom_at_same_target() {
        // the point of the single-shot variant: fewer words on the wire for
        // a comparable (small-neighborhood) workload
        let n = 64usize;
        let std_f = crate::BloomFilter::new(n, 16.0);
        let ss = SingleShotBloom::new(n, 12.0, 4);
        assert!(ss.to_words().len() <= std_f.to_words().len());
    }

    #[test]
    fn empty_filter_rejects() {
        let f = SingleShotBloom::new(10, 10.0, 4);
        assert!(!f.contains(99));
        assert_eq!(f.false_positive_rate(), 0.0);
    }
}

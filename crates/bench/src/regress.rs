//! Perf-regression gate: diffs freshly produced `BENCH_*.json` artifacts
//! against committed baselines under noise-aware tolerances.
//!
//! The bench harnesses emit two very different kinds of numbers, and the
//! gate treats them accordingly:
//!
//! * **Deterministic metrics** — modeled seconds, triangle counts, message
//!   totals. Pure functions of the counters and the cost model: identical
//!   across hosts at the same scale, so they get a *tight* fractional
//!   tolerance and any drift (either direction) fails the gate. These are
//!   the gate's teeth.
//! * **Measured metrics** — wall seconds, measured speedups. Properties of
//!   the host du jour, so they get a *loose* factor tolerance that only
//!   catches catastrophic regressions; CI widens it further for shared
//!   runners.
//!
//! The JSON is parsed by the self-contained flattener below (the workspace
//! builds without registry access — no serde): nested objects flatten to
//! `a/b/c` keys, numeric leaves are compared, string leaves (notably
//! `"scale"`) must match exactly.

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

/// How a metric key is compared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyClass {
    /// Pure function of counters/cost model: tight tolerance, both
    /// directions.
    Deterministic,
    /// Measured time (wall seconds): loose factor tolerance, only growth
    /// fails.
    LowerIsBetter,
    /// Measured speedup/rate: loose factor tolerance, only shrinkage
    /// fails.
    HigherIsBetter,
}

/// Key families that `push_seconds` emits without any `wall`/`seconds`
/// marker in the label — measured kernel timings by construction.
const MEASURED_TIME_MARKERS: &[&str] = &[
    "wall",
    "seconds",
    "nanos",
    "latency",
    "_p50",
    "_p99",
    "seq/",
    "intersect/",
    "preprocess/",
    "amq/",
    "kernel_matrix/",
    "dist_e2e/",
];

/// Classifies a flattened metric key by naming convention.
pub fn classify(key: &str) -> KeyClass {
    let k = key.to_ascii_lowercase();
    if k.contains("modeled") {
        KeyClass::Deterministic
    } else if k.contains("speedup") || k.contains("rate") || k.contains("per_second") {
        KeyClass::HigherIsBetter
    } else if MEASURED_TIME_MARKERS.iter().any(|m| k.contains(m)) {
        KeyClass::LowerIsBetter
    } else {
        KeyClass::Deterministic
    }
}

/// Comparison tolerances. Defaults suit a quiet local machine; CI loosens
/// the measured factors for shared runners.
#[derive(Debug, Clone, Copy)]
pub struct Tolerances {
    /// Fractional tolerance for deterministic metrics (relative drift
    /// beyond this fails, both directions).
    pub det_frac: f64,
    /// Factor by which a measured lower-is-better metric may grow.
    pub wall_factor: f64,
    /// Factor by which a measured higher-is-better metric may shrink.
    pub better_factor: f64,
}

impl Default for Tolerances {
    fn default() -> Tolerances {
        Tolerances {
            det_frac: 0.10,
            wall_factor: 4.0,
            better_factor: 4.0,
        }
    }
}

/// Severity of a [`Finding`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Fails the gate.
    Fail,
    /// Informational only (improvements, new keys).
    Note,
}

/// One comparison outcome worth reporting.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Artifact file name (`BENCH_<name>.json`).
    pub file: String,
    /// Flattened metric key (empty for file-level findings).
    pub key: String,
    /// Whether this finding fails the gate.
    pub severity: Severity,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = match self.severity {
            Severity::Fail => "FAIL",
            Severity::Note => "note",
        };
        if self.key.is_empty() {
            write!(f, "[{tag}] {}: {}", self.file, self.message)
        } else {
            write!(f, "[{tag}] {}: {}: {}", self.file, self.key, self.message)
        }
    }
}

/// A flattened benchmark artifact: numeric leaves plus string leaves.
#[derive(Debug, Default, Clone)]
pub struct FlatReport {
    /// `a/b/c`-flattened numeric leaves.
    pub numbers: BTreeMap<String, f64>,
    /// `a/b/c`-flattened string leaves (e.g. `scale`).
    pub strings: BTreeMap<String, String>,
}

/// Parses a `BENCH_*.json` document into a [`FlatReport`]. Tolerant of any
/// JSON shape the harnesses emit; rejects malformed documents.
pub fn flatten_json(text: &str) -> Result<FlatReport, String> {
    let mut p = Parser {
        b: text.as_bytes(),
        i: 0,
    };
    let mut out = FlatReport::default();
    p.skip_ws();
    p.value("", &mut out)?;
    p.skip_ws();
    if p.i != p.b.len() {
        return Err(format!("trailing bytes at offset {}", p.i));
    }
    Ok(out)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", c as char, self.i))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'n') => s.push('\n'),
                        Some(b't') => s.push('\t'),
                        Some(b'r') => s.push('\r'),
                        Some(b'u') => {
                            // \uXXXX — decode the BMP scalar, enough for
                            // the ASCII keys the harnesses emit
                            if self.i + 4 >= self.b.len() {
                                return Err("truncated \\u escape".to_string());
                            }
                            let hex = std::str::from_utf8(&self.b[self.i + 1..self.i + 5])
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            s.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                            self.i += 4;
                        }
                        Some(c) => s.push(c as char),
                        None => return Err("unterminated escape".to_string()),
                    }
                    self.i += 1;
                }
                Some(c) => {
                    // multi-byte UTF-8 passes through byte by byte; keys
                    // are ASCII in practice
                    s.push(c as char);
                    self.i += 1;
                }
            }
        }
    }

    fn join(prefix: &str, key: &str) -> String {
        if prefix.is_empty() {
            key.to_string()
        } else {
            format!("{prefix}/{key}")
        }
    }

    fn value(&mut self, prefix: &str, out: &mut FlatReport) -> Result<(), String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => {
                self.i += 1;
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.i += 1;
                    return Ok(());
                }
                loop {
                    self.skip_ws();
                    let k = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.value(&Self::join(prefix, &k), out)?;
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.i += 1,
                        Some(b'}') => {
                            self.i += 1;
                            return Ok(());
                        }
                        _ => return Err(format!("expected ',' or '}}' at offset {}", self.i)),
                    }
                }
            }
            Some(b'[') => {
                self.i += 1;
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.i += 1;
                    return Ok(());
                }
                let mut idx = 0usize;
                loop {
                    self.value(&Self::join(prefix, &idx.to_string()), out)?;
                    idx += 1;
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.i += 1,
                        Some(b']') => {
                            self.i += 1;
                            return Ok(());
                        }
                        _ => return Err(format!("expected ',' or ']' at offset {}", self.i)),
                    }
                }
            }
            Some(b'"') => {
                let s = self.string()?;
                out.strings.insert(prefix.to_string(), s);
                Ok(())
            }
            Some(b't') => self.literal("true", prefix, out, 1.0),
            Some(b'f') => self.literal("false", prefix, out, 0.0),
            Some(b'n') => {
                if self.b[self.i..].starts_with(b"null") {
                    self.i += 4;
                    Ok(())
                } else {
                    Err(format!("bad literal at offset {}", self.i))
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => {
                let start = self.i;
                while self
                    .peek()
                    .is_some_and(|c| c.is_ascii_digit() || b"+-.eE".contains(&c))
                {
                    self.i += 1;
                }
                let text = std::str::from_utf8(&self.b[start..self.i])
                    .map_err(|_| "bad number".to_string())?;
                let v: f64 = text
                    .parse()
                    .map_err(|_| format!("bad number '{text}' at offset {start}"))?;
                out.numbers.insert(prefix.to_string(), v);
                Ok(())
            }
            _ => Err(format!("unexpected byte at offset {}", self.i)),
        }
    }

    fn literal(
        &mut self,
        word: &str,
        prefix: &str,
        out: &mut FlatReport,
        v: f64,
    ) -> Result<(), String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            out.numbers.insert(prefix.to_string(), v);
            Ok(())
        } else {
            Err(format!("bad literal at offset {}", self.i))
        }
    }
}

/// Compares one fresh artifact against its baseline.
pub fn diff_reports(
    file: &str,
    baseline: &FlatReport,
    fresh: &FlatReport,
    tol: &Tolerances,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let push = |f: &mut Vec<Finding>, key: &str, severity, message| {
        f.push(Finding {
            file: file.to_string(),
            key: key.to_string(),
            severity,
            message,
        });
    };

    // scale (and any other string metadata) must match: comparing a quick
    // baseline against a full fresh run is meaningless.
    for (k, base) in &baseline.strings {
        match fresh.strings.get(k) {
            Some(now) if now == base => {}
            Some(now) => push(
                &mut findings,
                k,
                Severity::Fail,
                format!("metadata changed: baseline \"{base}\", fresh \"{now}\""),
            ),
            None => push(
                &mut findings,
                k,
                Severity::Fail,
                format!("metadata missing from fresh artifact (baseline \"{base}\")"),
            ),
        }
    }

    for (k, &base) in &baseline.numbers {
        let Some(&now) = fresh.numbers.get(k) else {
            push(
                &mut findings,
                k,
                Severity::Fail,
                format!("metric missing from fresh artifact (baseline {base})"),
            );
            continue;
        };
        match classify(k) {
            KeyClass::Deterministic => {
                let denom = base.abs().max(1e-12);
                let drift = (now - base).abs() / denom;
                if drift > tol.det_frac {
                    push(
                        &mut findings,
                        k,
                        Severity::Fail,
                        format!(
                            "deterministic metric drifted {:.1}% (baseline {base}, fresh {now}, tolerance {:.1}%)",
                            drift * 100.0,
                            tol.det_frac * 100.0
                        ),
                    );
                }
            }
            KeyClass::LowerIsBetter => {
                if base > 0.0 && now > base * tol.wall_factor {
                    push(
                        &mut findings,
                        k,
                        Severity::Fail,
                        format!(
                            "measured time regressed {:.2}x (baseline {base}, fresh {now}, tolerance {:.1}x)",
                            now / base,
                            tol.wall_factor
                        ),
                    );
                } else if base > 0.0 && now < base / tol.wall_factor {
                    push(
                        &mut findings,
                        k,
                        Severity::Note,
                        format!("improved {:.2}x (baseline {base}, fresh {now})", base / now),
                    );
                }
            }
            KeyClass::HigherIsBetter => {
                if base > 0.0 && now < base / tol.better_factor {
                    push(
                        &mut findings,
                        k,
                        Severity::Fail,
                        format!(
                            "measured gain regressed to {:.2}x of baseline (baseline {base}, fresh {now}, tolerance {:.1}x)",
                            now / base,
                            tol.better_factor
                        ),
                    );
                }
            }
        }
    }

    for k in fresh.numbers.keys() {
        if !baseline.numbers.contains_key(k) {
            push(
                &mut findings,
                k,
                Severity::Note,
                "new metric (not in baseline)".to_string(),
            );
        }
    }

    findings
}

/// Diffs every `BENCH_*.json` in `baseline_dir` against its counterpart in
/// `fresh_dir`. A baseline artifact with no fresh counterpart fails;
/// fresh artifacts with no baseline are noted.
pub fn diff_dirs(
    baseline_dir: &Path,
    fresh_dir: &Path,
    tol: &Tolerances,
) -> Result<Vec<Finding>, String> {
    let mut findings = Vec::new();
    let entries =
        std::fs::read_dir(baseline_dir).map_err(|e| format!("{}: {e}", baseline_dir.display()))?;
    let mut names: Vec<String> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        .collect();
    names.sort();
    if names.is_empty() {
        return Err(format!(
            "no BENCH_*.json baselines in {}",
            baseline_dir.display()
        ));
    }
    for name in &names {
        let base_text =
            std::fs::read_to_string(baseline_dir.join(name)).map_err(|e| format!("{name}: {e}"))?;
        let baseline = flatten_json(&base_text).map_err(|e| format!("{name} (baseline): {e}"))?;
        let fresh_path = fresh_dir.join(name);
        let fresh_text = match std::fs::read_to_string(&fresh_path) {
            Ok(t) => t,
            Err(_) => {
                findings.push(Finding {
                    file: name.clone(),
                    key: String::new(),
                    severity: Severity::Fail,
                    message: format!("fresh artifact missing ({})", fresh_path.display()),
                });
                continue;
            }
        };
        let fresh = flatten_json(&fresh_text).map_err(|e| format!("{name} (fresh): {e}"))?;
        findings.extend(diff_reports(name, &baseline, &fresh, tol));
    }
    Ok(findings)
}

/// Whether any finding fails the gate.
pub fn has_failures(findings: &[Finding]) -> bool {
    findings.iter().any(|f| f.severity == Severity::Fail)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn artifact(modeled: f64, wall: f64, speedup: f64) -> FlatReport {
        flatten_json(&format!(
            "{{\"benchmark\":\"transport\",\"scale\":\"quick\",\"results\":{{\
             \"transport/p4_modeled_seconds\":{modeled},\
             \"transport/p4_threads_wall_seconds\":{wall},\
             \"transport/measured_speedup_1_to_4\":{speedup},\
             \"transport/triangles\":42}}}}"
        ))
        .expect("well-formed artifact")
    }

    #[test]
    fn flattener_handles_nesting_and_types() {
        let flat = flatten_json(
            "{\"a\":{\"b\":[1,2.5,{\"c\":true}]},\"s\":\"x\",\"n\":null,\"neg\":-3e-2}",
        )
        .expect("parse");
        assert_eq!(flat.numbers["a/b/0"], 1.0);
        assert_eq!(flat.numbers["a/b/1"], 2.5);
        assert_eq!(flat.numbers["a/b/2/c"], 1.0);
        assert_eq!(flat.strings["s"], "x");
        assert_eq!(flat.numbers["neg"], -0.03);
        assert!(!flat.numbers.contains_key("n"));
        assert!(flatten_json("{\"a\":}").is_err());
        assert!(flatten_json("{\"a\":1} trailing").is_err());
    }

    #[test]
    fn key_classification() {
        assert_eq!(
            classify("transport/p4_modeled_seconds"),
            KeyClass::Deterministic
        );
        assert_eq!(
            classify("transport/p4_threads_wall_seconds"),
            KeyClass::LowerIsBetter
        );
        assert_eq!(
            classify("seq/compact_forward/rmat12"),
            KeyClass::LowerIsBetter
        );
        assert_eq!(
            classify("speedup_vs_merge/skewed/t64/auto"),
            KeyClass::HigherIsBetter
        );
        assert_eq!(classify("engine/stats/runs_total"), KeyClass::Deterministic);
    }

    #[test]
    fn identical_artifacts_pass() {
        let a = artifact(0.5, 1.0, 2.0);
        let findings = diff_reports("BENCH_transport.json", &a, &a, &Tolerances::default());
        assert!(!has_failures(&findings), "{findings:?}");
    }

    #[test]
    fn injected_modeled_regression_fails() {
        let base = artifact(0.5, 1.0, 2.0);
        let bad = artifact(1.0, 1.0, 2.0); // 2x on a deterministic metric
        let findings = diff_reports("BENCH_transport.json", &base, &bad, &Tolerances::default());
        assert!(has_failures(&findings), "{findings:?}");
        assert!(findings.iter().any(
            |f| f.key == "results/transport/p4_modeled_seconds" && f.severity == Severity::Fail
        ));
    }

    #[test]
    fn wall_noise_tolerated_but_blowup_fails() {
        let base = artifact(0.5, 1.0, 2.0);
        let noisy = artifact(0.5, 2.5, 2.0); // 2.5x wall: inside 4x factor
        let findings = diff_reports("t", &base, &noisy, &Tolerances::default());
        assert!(!has_failures(&findings), "{findings:?}");
        let blowup = artifact(0.5, 8.0, 2.0); // 8x wall: outside
        let findings = diff_reports("t", &base, &blowup, &Tolerances::default());
        assert!(has_failures(&findings), "{findings:?}");
    }

    #[test]
    fn speedup_collapse_fails_and_missing_metric_fails() {
        let base = artifact(0.5, 1.0, 2.0);
        let collapsed = artifact(0.5, 1.0, 0.2); // 10x slower speedup
        let findings = diff_reports("t", &base, &collapsed, &Tolerances::default());
        assert!(has_failures(&findings), "{findings:?}");

        let mut gone = artifact(0.5, 1.0, 2.0);
        gone.numbers.remove("results/transport/triangles");
        let findings = diff_reports("t", &base, &gone, &Tolerances::default());
        assert!(has_failures(&findings), "{findings:?}");
    }

    #[test]
    fn scale_mismatch_fails() {
        let base = artifact(0.5, 1.0, 2.0);
        let mut other = artifact(0.5, 1.0, 2.0);
        other
            .strings
            .insert("scale".to_string(), "full".to_string());
        let findings = diff_reports("t", &base, &other, &Tolerances::default());
        assert!(has_failures(&findings), "{findings:?}");
    }

    #[test]
    fn dir_diff_and_synthetic_injection_end_to_end() {
        let tmp =
            std::env::temp_dir().join(format!("tricount-regress-test-{}", std::process::id()));
        let baseline_dir = tmp.join("baseline");
        let fresh_dir = tmp.join("fresh");
        std::fs::create_dir_all(&baseline_dir).expect("mkdir");
        std::fs::create_dir_all(&fresh_dir).expect("mkdir");
        let doc = "{\"benchmark\":\"kernels\",\"scale\":\"quick\",\"results\":{\
                   \"kernels/modeled_total\":0.25,\"seq/a\":0.001}}";
        std::fs::write(baseline_dir.join("BENCH_kernels.json"), doc).expect("write");
        std::fs::write(fresh_dir.join("BENCH_kernels.json"), doc).expect("write");
        let findings = diff_dirs(&baseline_dir, &fresh_dir, &Tolerances::default()).expect("diff");
        assert!(!has_failures(&findings));

        // inject a synthetic 2x regression on the deterministic metric
        let bad = doc.replace("0.25", "0.5");
        std::fs::write(fresh_dir.join("BENCH_kernels.json"), bad).expect("write");
        let findings = diff_dirs(&baseline_dir, &fresh_dir, &Tolerances::default()).expect("diff");
        assert!(has_failures(&findings));

        // a baseline with no fresh counterpart fails
        std::fs::remove_file(fresh_dir.join("BENCH_kernels.json")).expect("rm");
        let findings = diff_dirs(&baseline_dir, &fresh_dir, &Tolerances::default()).expect("diff");
        assert!(has_failures(&findings));
        let _ = std::fs::remove_dir_all(&tmp);
    }
}

//! Shared utilities for the figure/table harnesses.
//!
//! Every `benches/figN_*.rs` target is a standalone binary (`harness =
//! false`) that regenerates the corresponding table or figure of the
//! paper's evaluation section and prints it as a text table: the same
//! series the paper plots (modeled running time, max outgoing messages per
//! PE, bottleneck communication volume), produced from real metered runs of
//! the same algorithms on proxy instances.
//!
//! Scale control: set `TRICOUNT_BENCH_SCALE=quick|default|full` to trade
//! fidelity against wall time (quick ≈ seconds, used in CI smoke runs).

#![warn(missing_docs)]

pub mod regress;

use cetric::prelude::*;

/// Benchmark scale selected via `TRICOUNT_BENCH_SCALE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny instances for smoke testing.
    Quick,
    /// Default: minutes of wall time, shapes clearly visible.
    Default,
    /// Larger instances; tens of minutes.
    Full,
}

impl Scale {
    /// Reads the scale from the environment.
    pub fn from_env() -> Scale {
        match std::env::var("TRICOUNT_BENCH_SCALE").as_deref() {
            Ok("quick") => Scale::Quick,
            Ok("full") => Scale::Full,
            _ => Scale::Default,
        }
    }

    /// Scale factor applied to instance sizes (log2).
    pub fn shift(self) -> u32 {
        match self {
            Scale::Quick => 0,
            Scale::Default => 2,
            Scale::Full => 4,
        }
    }

    /// The PE counts swept by the scaling figures.
    pub fn pe_counts(self) -> Vec<usize> {
        match self {
            Scale::Quick => vec![2, 4, 8],
            Scale::Default => vec![2, 4, 8, 16, 32],
            Scale::Full => vec![2, 4, 8, 16, 32, 64],
        }
    }
}

/// Machine-readable benchmark artifacts (`BENCH_<name>.json`), hand-rolled
/// because the workspace builds without registry access (no serde). Each
/// harness collects `(label, value)` entries and writes one JSON file next
/// to the human-readable table, so the perf trajectory can be tracked by
/// tooling instead of log-scraping.
pub mod report {
    use std::io::Write;
    use std::path::PathBuf;

    /// Collects benchmark results and serialises them to
    /// `BENCH_<name>.json`.
    pub struct BenchReport {
        name: String,
        scale: String,
        entries: Vec<(String, String)>,
    }

    impl BenchReport {
        /// A report for harness `name` under the given scale.
        pub fn new(name: &str, scale: super::Scale) -> BenchReport {
            BenchReport {
                name: name.to_string(),
                scale: format!("{scale:?}").to_lowercase(),
                entries: Vec::new(),
            }
        }

        /// Records a per-call wall time, in seconds.
        pub fn push_seconds(&mut self, label: &str, seconds: f64) {
            self.push_raw(label, &format_f64(seconds));
        }

        /// Records an already-serialised JSON value under `label`.
        pub fn push_raw(&mut self, label: &str, raw_json: &str) {
            self.entries.push((label.to_string(), raw_json.to_string()));
        }

        /// Serialises the report as a JSON object.
        pub fn to_json(&self) -> String {
            let mut s = String::with_capacity(256 + 64 * self.entries.len());
            s.push_str(&format!(
                "{{\"benchmark\":\"{}\",\"scale\":\"{}\",\"results\":{{",
                self.name, self.scale
            ));
            let parts: Vec<String> = self
                .entries
                .iter()
                .map(|(k, v)| format!("\"{k}\":{v}"))
                .collect();
            s.push_str(&parts.join(","));
            s.push_str("}}");
            s
        }

        /// Writes `BENCH_<name>.json` into `TRICOUNT_BENCH_OUT` (or the
        /// current directory) and returns the path.
        pub fn write(&self) -> std::io::Result<PathBuf> {
            let dir = std::env::var("TRICOUNT_BENCH_OUT").unwrap_or_else(|_| ".".to_string());
            let path = PathBuf::from(dir).join(format!("BENCH_{}.json", self.name));
            let mut f = std::fs::File::create(&path)?;
            f.write_all(self.to_json().as_bytes())?;
            Ok(path)
        }
    }

    /// JSON-safe float formatting (NaN/Inf become 0).
    pub fn format_f64(x: f64) -> String {
        if x.is_finite() {
            format!("{x}")
        } else {
            "0".to_string()
        }
    }
}

/// One row of a result table.
#[derive(Debug, Clone)]
pub struct Row {
    /// Row label (e.g. PE count or instance name).
    pub label: String,
    /// One formatted cell per algorithm/series.
    pub cells: Vec<String>,
}

/// Prints a text table with a header.
pub fn print_table(title: &str, columns: &[&str], rows: &[Row]) {
    println!("\n=== {title} ===");
    let widths: Vec<usize> = columns
        .iter()
        .enumerate()
        .map(|(i, c)| {
            rows.iter()
                .map(|r| r.cells.get(i).map_or(0, |s| s.len()))
                .max()
                .unwrap_or(0)
                .max(c.len())
        })
        .collect();
    let label_w = rows.iter().map(|r| r.label.len()).max().unwrap_or(0).max(5);
    print!("{:<label_w$}", "");
    for (c, w) in columns.iter().zip(&widths) {
        print!(" | {c:>w$}");
    }
    println!();
    for r in rows {
        print!("{:<label_w$}", r.label);
        for (i, w) in widths.iter().enumerate() {
            let empty = String::new();
            let cell = r.cells.get(i).unwrap_or(&empty);
            print!(" | {cell:>w$}");
        }
        println!();
    }
}

/// Formats a modeled time in engineering units.
pub fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.2}s")
    } else if seconds >= 1e-3 {
        format!("{:.2}ms", seconds * 1e3)
    } else {
        format!("{:.1}us", seconds * 1e6)
    }
}

/// Formats a count with k/M suffixes.
pub fn fmt_count(x: u64) -> String {
    if x >= 10_000_000 {
        format!("{:.1}M", x as f64 / 1e6)
    } else if x >= 10_000 {
        format!("{:.1}k", x as f64 / 1e3)
    } else {
        x.to_string()
    }
}

/// Runs `alg` and formats the Fig. 5/6 triple "time / max msgs / bottleneck
/// volume", or the error.
pub fn run_cell(g: &Csr, p: usize, alg: Algorithm, model: &CostModel) -> String {
    match count(g, p, alg) {
        Ok(r) => format!(
            "{} {} {}",
            fmt_time(r.modeled_time(model)),
            fmt_count(r.stats.max_sent_messages()),
            fmt_count(r.stats.bottleneck_volume())
        ),
        Err(e) => match e {
            DistError::OutOfMemory { .. } => "OOM".to_string(),
            DistError::Deadlock { .. } => "DEADLOCK".to_string(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting() {
        assert_eq!(fmt_time(2.0), "2.00s");
        assert_eq!(fmt_time(0.0042), "4.20ms");
        assert_eq!(fmt_time(3e-6), "3.0us");
        assert_eq!(fmt_count(999), "999");
        assert_eq!(fmt_count(25_000), "25.0k");
        assert_eq!(fmt_count(25_000_000), "25.0M");
    }

    #[test]
    fn scale_env_parsing() {
        assert_eq!(Scale::Quick.shift(), 0);
        assert!(Scale::Full.pe_counts().contains(&64));
    }

    #[test]
    fn report_serialises() {
        let mut r = report::BenchReport::new("unit_test", Scale::Quick);
        r.push_seconds("kernel/a", 1.5e-6);
        r.push_raw("stats", "{\"x\":1}");
        let j = r.to_json();
        assert!(j.starts_with("{\"benchmark\":\"unit_test\",\"scale\":\"quick\""));
        assert!(j.contains("\"kernel/a\":0.0000015"));
        assert!(j.contains("\"stats\":{\"x\":1}"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn run_cell_produces_output() {
        let g = cetric::gen::gnm(128, 512, 1);
        let cell = run_cell(&g, 4, Algorithm::Ditric, &CostModel::supermuc());
        assert!(cell.contains(' '));
    }
}

//! `tricount-regress` — the perf-regression gate.
//!
//! Diffs freshly produced `BENCH_*.json` artifacts against committed
//! baselines under the noise-aware tolerances of `tricount_bench::regress`
//! and exits nonzero when any metric regressed, so CI can fail the build.
//!
//! ```text
//! tricount-regress --baseline baselines --fresh target/bench-fresh \
//!     [--det-frac 0.10] [--wall-factor 4.0] [--better-factor 4.0]
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use tricount_bench::regress::{diff_dirs, has_failures, Severity, Tolerances};

fn usage() -> &'static str {
    "usage: tricount-regress --baseline DIR --fresh DIR\n\
     \x20      [--det-frac FRAC]      tolerance for deterministic metrics (default 0.10)\n\
     \x20      [--wall-factor X]      allowed growth factor for measured times (default 4.0)\n\
     \x20      [--better-factor X]    allowed shrink factor for measured speedups (default 4.0)\n\
     diffs fresh BENCH_*.json artifacts against committed baselines;\n\
     exits nonzero when any metric regressed beyond tolerance"
}

fn parse_f64(flag: &str, v: Option<String>) -> Result<f64, String> {
    let v = v.ok_or_else(|| format!("{flag} needs a value"))?;
    let x: f64 = v.parse().map_err(|_| format!("{flag}: bad number '{v}'"))?;
    if x.is_finite() && x > 0.0 {
        Ok(x)
    } else {
        Err(format!("{flag}: must be finite and positive"))
    }
}

fn run() -> Result<bool, String> {
    let mut baseline: Option<PathBuf> = None;
    let mut fresh: Option<PathBuf> = None;
    let mut tol = Tolerances::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => baseline = args.next().map(PathBuf::from),
            "--fresh" => fresh = args.next().map(PathBuf::from),
            "--det-frac" => tol.det_frac = parse_f64("--det-frac", args.next())?,
            "--wall-factor" => tol.wall_factor = parse_f64("--wall-factor", args.next())?,
            "--better-factor" => tol.better_factor = parse_f64("--better-factor", args.next())?,
            "--help" | "-h" => {
                println!("{}", usage());
                return Ok(true);
            }
            other => return Err(format!("unknown flag '{other}'\n{}", usage())),
        }
    }
    let baseline = baseline.ok_or_else(|| format!("--baseline is required\n{}", usage()))?;
    let fresh = fresh.ok_or_else(|| format!("--fresh is required\n{}", usage()))?;

    let findings = diff_dirs(&baseline, &fresh, &tol)?;
    let fails = findings
        .iter()
        .filter(|f| f.severity == Severity::Fail)
        .count();
    for f in &findings {
        println!("{f}");
    }
    println!(
        "tricount-regress: {} finding(s), {} failing (tolerances: det {:.0}%, wall {:.1}x, gain {:.1}x)",
        findings.len(),
        fails,
        tol.det_frac * 100.0,
        tol.wall_factor,
        tol.better_factor
    );
    Ok(!has_failures(&findings))
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("tricount-regress: {e}");
            ExitCode::FAILURE
        }
    }
}

//! Figure 7: running time distribution over the algorithm phases
//! (preprocessing / local / global) for the best DITRIC variant vs the best
//! CETRIC variant on selected real-world instances.

use cetric::prelude::*;
use tricount_bench::{fmt_time, print_table, Row, Scale};

fn phase_cells(r: &CountResult, model: &CostModel) -> Vec<String> {
    let t = |name: &str| r.stats.phase_time(name, model);
    let total = r.modeled_time(model);
    vec![
        fmt_time(t("preprocessing")),
        fmt_time(t("local")),
        fmt_time(t("global")),
        fmt_time(total),
    ]
}

fn best(g: &Csr, p: usize, algs: &[Algorithm], model: &CostModel) -> (Algorithm, CountResult) {
    algs.iter()
        .map(|&a| (a, count(g, p, a).unwrap()))
        .min_by(|a, b| {
            a.1.modeled_time(model)
                .partial_cmp(&b.1.modeled_time(model))
                .unwrap()
        })
        .unwrap()
}

fn main() {
    let scale = Scale::from_env();
    let model = CostModel::supermuc();
    let n = 1u64 << (11 + scale.shift());
    let p = *scale.pe_counts().last().unwrap();
    // the instances Fig. 7 selects
    let instances = [
        Dataset::Friendster,
        Dataset::LiveJournal,
        Dataset::Webbase2001,
    ];

    let mut rows = Vec::new();
    for ds in instances {
        let g = ds.generate(n, 42);
        let (da, d) = best(&g, p, &[Algorithm::Ditric, Algorithm::Ditric2], &model);
        let (ca, c) = best(&g, p, &[Algorithm::Cetric, Algorithm::Cetric2], &model);
        assert_eq!(d.triangles, c.triangles);
        rows.push(Row {
            label: format!("{} [{}]", ds.paper_stats().name, da.name()),
            cells: phase_cells(&d, &model),
        });
        rows.push(Row {
            label: format!("{} [{}]", ds.paper_stats().name, ca.name()),
            cells: phase_cells(&c, &model),
        });
        // the volume comparison the paper reads off this figure
        let gv = |r: &CountResult| {
            r.stats
                .phases
                .iter()
                .filter(|ph| ph.name == "global")
                .map(|ph| ph.total_volume())
                .sum::<u64>()
        };
        rows.push(Row {
            label: format!("{}   -> global volume", ds.paper_stats().name),
            cells: vec![
                String::new(),
                String::new(),
                format!(
                    "{:.2}x less w/ CETRIC",
                    gv(&d) as f64 / gv(&c).max(1) as f64
                ),
                String::new(),
            ],
        });
    }
    print_table(
        &format!("Fig. 7: phase break-down at p={p} (best DITRIC vs best CETRIC variant)"),
        &["preprocessing", "local", "global", "total"],
        &rows,
    );
    println!(
        "\npaper shapes: CETRIC halves the global phase via contraction but \
         pays extra preprocessing + local work; on friendster-like inputs \
         (little locality) the reduction is small."
    );
}

//! Closed-loop warm/cold benchmark of the remote-adjacency cache: build a
//! cache-enabled engine, drive a deterministic mixed workload cold (every
//! remote list ships), then re-drive the identical workload against the
//! warm cache and report hit rate and adjacency words per query. The warm
//! pass must save at least 90 % of the adjacency words the cold pass
//! shipped — the roadmap's acceptance bar, recorded in `BENCH_cache.json`
//! and gated by `tricount-regress`.

use std::time::Instant;

use cetric::core::Algorithm;
use cetric::engine::{Engine, EngineConfig, Query};
use tricount_bench::report::{format_f64, BenchReport};
use tricount_bench::{fmt_time, print_table, Row, Scale};

fn workload(n: u64) -> Vec<Query> {
    let mut qs: Vec<Query> = [
        Algorithm::Cetric,
        Algorithm::Cetric2,
        Algorithm::Ditric,
        Algorithm::Ditric2,
    ]
    .into_iter()
    .map(|algorithm| Query::GlobalTriangles { algorithm })
    .collect();
    // cross-partition support queries: endpoints far apart in id space
    let edges: Vec<(u64, u64)> = (0..32)
        .map(|i| (i * 3 % (n / 2), n / 2 + (i * 7) % (n / 2)))
        .collect();
    qs.push(Query::EdgeSupport { edges });
    qs.push(Query::VertexLcc {
        vertices: (0..n).step_by(5).collect(),
    });
    qs
}

fn main() {
    let scale = Scale::from_env();
    let n = 1u64 << (9 + scale.shift());
    let p = 4usize;
    let budget = 1u64 << 22;

    let g = cetric::gen::rgg2d_default(n, 42);
    let mut report = BenchReport::new("cache", scale);
    let mut rows = Vec::new();
    let push =
        |rows: &mut Vec<Row>, report: &mut BenchReport, label: &str, cell: String, json: &str| {
            report.push_raw(label, json);
            rows.push(Row {
                label: label.to_string(),
                cells: vec![cell],
            });
        };

    let engine = Engine::build(&g, EngineConfig::new(p).with_cache_budget(budget));
    let qs = workload(n);

    // cold pass: empty cache, every remote adjacency list ships
    let t0 = Instant::now();
    for q in &qs {
        engine.query(q.clone()).expect("cold query");
    }
    let cold_seconds = t0.elapsed().as_secs_f64();
    let cold = engine.stats();

    // warm pass: identical workload; the epoch bump invalidates the
    // *result* cache so every query re-executes, against warm cells
    engine.advance_epoch();
    let t0 = Instant::now();
    for q in &qs {
        engine.query(q.clone()).expect("warm query");
    }
    let warm_seconds = t0.elapsed().as_secs_f64();
    let warm = engine.stats();

    let nq = qs.len() as f64;
    let cold_shipped = cold.query_adjacency.words_shipped;
    let warm_shipped = warm.query_adjacency.words_shipped - cold_shipped;
    let warm_saved = warm.query_adjacency.words_saved - cold.query_adjacency.words_saved;
    let warm_hits = warm.query_adjacency.hits - cold.query_adjacency.hits;
    let warm_lookups = warm.query_adjacency.lookups - cold.query_adjacency.lookups;
    let warm_hit_rate = warm_hits as f64 / (warm_lookups as f64).max(1.0);
    let saved_fraction = warm_saved as f64 / ((warm_saved + warm_shipped) as f64).max(1.0);
    assert!(
        warm_saved * 10 >= 9 * (warm_saved + warm_shipped),
        "warm pass must save >= 90% of adjacency words (saved {warm_saved}, shipped {warm_shipped})"
    );

    push(
        &mut rows,
        &mut report,
        "cache/cold_adjacency_words_per_query",
        format!("{:.0}", cold_shipped as f64 / nq),
        &format_f64(cold_shipped as f64 / nq),
    );
    push(
        &mut rows,
        &mut report,
        "cache/warm_adjacency_words_per_query",
        format!("{:.0}", warm_shipped as f64 / nq),
        &format_f64(warm_shipped as f64 / nq),
    );
    push(
        &mut rows,
        &mut report,
        "cache/warm_hit_rate",
        format!("{:.1}%", warm_hit_rate * 100.0),
        &format_f64(warm_hit_rate),
    );
    push(
        &mut rows,
        &mut report,
        "cache/warm_words_saved_fraction",
        format!("{:.3}", saved_fraction),
        &format_f64(saved_fraction),
    );
    push(
        &mut rows,
        &mut report,
        "cache/resident_words",
        format!("{}", warm.adj_cache_resident_words),
        &format_f64(warm.adj_cache_resident_words as f64),
    );
    push(
        &mut rows,
        &mut report,
        "cache/resident_entries",
        format!("{}", warm.adj_cache_entries),
        &format_f64(warm.adj_cache_entries as f64),
    );
    push(
        &mut rows,
        &mut report,
        "cache/evictions",
        format!("{}", warm.query_adjacency.evictions),
        &format_f64(warm.query_adjacency.evictions as f64),
    );
    push(
        &mut rows,
        &mut report,
        "cache/cold_serve_seconds",
        fmt_time(cold_seconds),
        &format_f64(cold_seconds),
    );
    push(
        &mut rows,
        &mut report,
        "cache/warm_serve_seconds",
        fmt_time(warm_seconds),
        &format_f64(warm_seconds),
    );

    print_table(
        &format!(
            "adjacency cache, rgg2d n={n} on {p} PEs, {} queries cold+warm, budget {budget} words",
            qs.len()
        ),
        &["value"],
        &rows,
    );
    match report.write() {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_cache.json: {e}"),
    }
}

//! Modeled vs measured scaling of the transport backends: the same counting
//! runs on the metered simulator and the threads backend over p ∈ {1, 2, 4,
//! 8}, reporting modeled α+β+t_op seconds next to honest wall clock. The
//! headline number is the measured 1 → 4 PE-thread speedup on the largest
//! fixture — real parallelism the modeled axis can only predict. Results
//! land in `BENCH_transport.json`.

use std::time::Instant;

use cetric::comm::{SimOptions, TransportKind};
use cetric::core::dist::run_on;
use cetric::prelude::*;
use tricount_bench::report::{format_f64, BenchReport};
use tricount_bench::{fmt_time, print_table, Row, Scale};

const REPS: usize = 3;

fn wall_of(g: &Csr, p: usize, opts: &SimOptions) -> (f64, f64, u64) {
    let cfg = Algorithm::Cetric.config();
    let mut best = f64::INFINITY;
    let mut modeled = 0.0;
    let mut triangles = 0;
    for _ in 0..REPS {
        let dg = DistGraph::new_balanced_vertices(g, p);
        let t0 = Instant::now();
        let (r, _) = run_on(dg, Algorithm::Cetric, &cfg, opts).expect("count");
        best = best.min(t0.elapsed().as_secs_f64());
        modeled = r.modeled_time(&CostModel::supermuc());
        triangles = r.triangles;
    }
    (best, modeled, triangles)
}

fn main() {
    let scale = Scale::from_env();
    let n = 1u64 << (13 + scale.shift());
    let g = cetric::gen::rgg2d_default(n, 42);
    let mut report = BenchReport::new("transport", scale);
    let mut rows = Vec::new();

    let mut walls = Vec::new();
    let mut truth = None;
    for p in [1usize, 2, 4, 8] {
        let (sim_wall, modeled, t_sim) = wall_of(&g, p, &SimOptions::on(TransportKind::Sim));
        let (thr_wall, _, t_thr) = wall_of(&g, p, &SimOptions::on(TransportKind::Threads));
        assert_eq!(t_sim, t_thr, "backends disagreed on the count at p={p}");
        match truth {
            None => truth = Some(t_sim),
            Some(t) => assert_eq!(t, t_sim, "count changed with p"),
        }
        walls.push((p, thr_wall));
        rows.push(Row {
            label: format!("p={p}"),
            cells: vec![fmt_time(modeled), fmt_time(sim_wall), fmt_time(thr_wall)],
        });
        report.push_raw(
            &format!("transport/p{p}_modeled_seconds"),
            &format_f64(modeled),
        );
        report.push_raw(
            &format!("transport/p{p}_sim_wall_seconds"),
            &format_f64(sim_wall),
        );
        report.push_raw(
            &format!("transport/p{p}_threads_wall_seconds"),
            &format_f64(thr_wall),
        );
    }

    let wall_at = |q: usize| walls.iter().find(|&&(p, _)| p == q).map(|&(_, w)| w);
    let speedup = wall_at(1).unwrap_or(f64::NAN) / wall_at(4).unwrap_or(f64::NAN);
    report.push_raw("transport/measured_speedup_1_to_4", &format_f64(speedup));
    rows.push(Row {
        label: "speedup 1→4 (threads wall)".to_string(),
        cells: vec![String::new(), String::new(), format!("{speedup:.2}x")],
    });

    print_table(
        &format!(
            "transport backends, CETRIC on rgg2d n={n} (triangles {}) — modeled / sim wall / threads wall",
            truth.unwrap_or(0)
        ),
        &["modeled", "sim wall", "threads wall"],
        &rows,
    );

    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    if cores >= 4 {
        assert!(
            speedup > 1.0,
            "threads backend must beat its own 1-PE run going 1 → 4 PE threads \
             on a {cores}-core host (got {speedup:.2}x)"
        );
    } else {
        println!("(host has {cores} cores; skipping the 1 → 4 speedup assertion)");
    }

    match report.write() {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_transport.json: {e}"),
    }
}

//! Closed-loop mixed read/update benchmark: the serialized serving
//! discipline (reads submitted before an update wait for it) against the
//! MVCC engine (reads pin their admission-time epoch and are ticked from
//! another thread while the update runs). Reports queue-wait p50/p99 and
//! read throughput for both paths, the p99 speedup, and a multi-tenant
//! host section — with every answer checked bit-identical to the serial
//! per-epoch oracle across all 7 algorithm variants.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

use cetric::core::config::Algorithm;
use cetric::core::seq;
use cetric::delta::{apply_to_csr, random_batch, UpdateBatch};
use cetric::engine::{
    Engine, EngineConfig, EngineHost, HostConfig, HostReply, HostRequest, Query, QueryAnswer,
};
use cetric::graph::Csr;
use tricount_bench::report::{format_f64, BenchReport};
use tricount_bench::{fmt_time, print_table, Row, Scale};

fn count_of(g: &Csr) -> u64 {
    seq::compact_forward(g).triangles
}

fn read_query(i: usize) -> Query {
    Query::GlobalTriangles {
        algorithm: Algorithm::all()[i % Algorithm::all().len()],
    }
}

fn check(answers: &[(u64, u64)], truth: &BTreeMap<u64, u64>) {
    for (epoch, count) in answers {
        assert_eq!(
            Some(count),
            truth.get(epoch),
            "answer at epoch {epoch} bit-equals the serialized oracle"
        );
    }
}

fn main() {
    let scale = Scale::from_env();
    let n = 1u64 << (9 + scale.shift());
    let p = 4usize;
    let rounds = 4usize;
    let reads_per_round = 8 + 4 * Algorithm::all().len(); // every variant, twice+
    let reads_total = rounds * reads_per_round;
    let batch_ops = 192usize << scale.shift();

    let g = cetric::gen::rgg2d_default(n, 42);
    let batches: Vec<UpdateBatch> = (0..rounds)
        .map(|i| random_batch(&g, batch_ops, 1000 + i as u64))
        .collect();

    let mut report = BenchReport::new("serve", scale);
    let mut rows = Vec::new();
    let push =
        |rows: &mut Vec<Row>, report: &mut BenchReport, label: &str, cell: String, json: &str| {
            report.push_raw(label, json);
            rows.push(Row {
                label: label.to_string(),
                cells: vec![cell],
            });
        };

    let t0 = Instant::now();
    let serialized = Engine::build(&g, EngineConfig::new(p));
    let build = t0.elapsed().as_secs_f64();
    push(
        &mut rows,
        &mut report,
        "serve/build_seconds",
        fmt_time(build),
        &format_f64(build),
    );

    // ---- Serialized discipline: submit reads, run the update (the reads
    // wait for it), then drain. One thread, exactly as the pre-MVCC
    // engine had to serve.
    let mut truth: BTreeMap<u64, u64> = BTreeMap::new();
    truth.insert(0, count_of(&g));
    let mut serial = g.clone();
    let mut answers: Vec<(u64, u64)> = Vec::new();
    let t0 = Instant::now();
    for (round, batch) in batches.iter().enumerate() {
        for i in 0..reads_per_round {
            serialized
                .submit(read_query(round * reads_per_round + i))
                .expect("under capacity");
        }
        let receipt = serialized.apply_updates(batch).expect("in-range batch");
        serial = apply_to_csr(&serial, &batch.canonicalize());
        let expected = count_of(&serial);
        assert_eq!(receipt.triangles_after, expected, "receipt tracks oracle");
        truth.insert(receipt.epoch, expected);
        while serialized.queue_depth() > 0 {
            for (_, epoch, a) in serialized.tick_pinned() {
                match a.expect("valid queries") {
                    QueryAnswer::Count(c) => answers.push((epoch, c)),
                    other => panic!("expected Count, got {other:?}"),
                }
            }
        }
    }
    let serialized_seconds = t0.elapsed().as_secs_f64();
    assert_eq!(answers.len(), reads_total);
    check(&answers, &truth);
    let s_ser = serialized.stats();

    // ---- MVCC: the same batches stream from a writer thread while a
    // reader thread submits and drains the same read mix — reads admitted
    // mid-update complete against their pinned epoch without waiting.
    let mvcc = Engine::build(&g, EngineConfig::new(p));
    let receipts: Mutex<Vec<(u64, u64)>> = Mutex::new(Vec::new());
    let answered: Mutex<Vec<(u64, u64)>> = Mutex::new(Vec::new());
    let t0 = Instant::now();
    let mut reader_seconds = 0.0;
    std::thread::scope(|scope| {
        let writer_engine = mvcc.clone();
        let reader_engine = mvcc.clone();
        let receipts = &receipts;
        let answered = &answered;
        let batches = &batches;
        let writer = scope.spawn(move || {
            for batch in batches {
                let r = writer_engine.apply_updates(batch).expect("in-range batch");
                receipts
                    .lock()
                    .expect("receipts lock")
                    .push((r.epoch, r.triangles_after));
            }
        });
        let reader = scope.spawn(move || {
            let t = Instant::now();
            let mut done = 0usize;
            let mut submitted = 0usize;
            while done < reads_total {
                if submitted < reads_total && reader_engine.submit(read_query(submitted)).is_ok() {
                    submitted += 1;
                }
                for (_, epoch, a) in reader_engine.tick_pinned() {
                    match a.expect("valid queries") {
                        QueryAnswer::Count(c) => {
                            answered.lock().expect("answers lock").push((epoch, c));
                        }
                        other => panic!("expected Count, got {other:?}"),
                    }
                    done += 1;
                }
            }
            t.elapsed().as_secs_f64()
        });
        writer.join().expect("writer");
        reader_seconds = reader.join().expect("reader");
    });
    let mvcc_seconds = t0.elapsed().as_secs_f64();
    let _ = mvcc_seconds;

    // Verify against the oracle rebuilt from the receipts.
    let mut truth2: BTreeMap<u64, u64> = BTreeMap::new();
    truth2.insert(0, count_of(&g));
    let mut serial2 = g.clone();
    for (batch, (epoch, after)) in batches.iter().zip(receipts.into_inner().expect("receipts")) {
        serial2 = apply_to_csr(&serial2, &batch.canonicalize());
        assert_eq!(after, count_of(&serial2), "receipt tracks oracle");
        truth2.insert(epoch, after);
    }
    let answered = answered.into_inner().expect("answers");
    assert_eq!(answered.len(), reads_total);
    check(&answered, &truth2);
    let s_mvcc = mvcc.stats();
    assert_eq!(
        s_mvcc.resident_triangles, s_ser.resident_triangles,
        "both paths converge on the same graph"
    );

    push(
        &mut rows,
        &mut report,
        "serve/reads_total",
        format!("{reads_total}"),
        &format_f64(reads_total as f64),
    );
    push(
        &mut rows,
        &mut report,
        "serve/updates_total",
        format!("{rounds}"),
        &format_f64(rounds as f64),
    );
    push(
        &mut rows,
        &mut report,
        "serve/serialized_queue_wait_p50",
        fmt_time(s_ser.queue_wait.p50),
        &format_f64(s_ser.queue_wait.p50),
    );
    push(
        &mut rows,
        &mut report,
        "serve/serialized_queue_wait_p99",
        fmt_time(s_ser.queue_wait.p99),
        &format_f64(s_ser.queue_wait.p99),
    );
    push(
        &mut rows,
        &mut report,
        "serve/mvcc_queue_wait_p50",
        fmt_time(s_mvcc.queue_wait.p50),
        &format_f64(s_mvcc.queue_wait.p50),
    );
    push(
        &mut rows,
        &mut report,
        "serve/mvcc_queue_wait_p99",
        fmt_time(s_mvcc.queue_wait.p99),
        &format_f64(s_mvcc.queue_wait.p99),
    );
    // The raw ratio swings over orders of magnitude with scheduler noise
    // (the MVCC p99 is sub-microsecond); cap the gated value so the
    // baseline pins a stable "at least this much better" threshold.
    let speedup = s_ser.queue_wait.p99 / s_mvcc.queue_wait.p99.max(1e-9);
    push(
        &mut rows,
        &mut report,
        "serve/read_p99_speedup",
        format!("{speedup:.1}x"),
        &format_f64(speedup.min(100.0)),
    );
    push(
        &mut rows,
        &mut report,
        "serve/serialized_reads_per_second",
        format!(
            "{:.0}/s",
            reads_total as f64 / serialized_seconds.max(1e-12)
        ),
        &format_f64(reads_total as f64 / serialized_seconds.max(1e-12)),
    );
    push(
        &mut rows,
        &mut report,
        "serve/mvcc_reads_per_second",
        format!("{:.0}/s", reads_total as f64 / reader_seconds.max(1e-12)),
        &format_f64(reads_total as f64 / reader_seconds.max(1e-12)),
    );
    push(
        &mut rows,
        &mut report,
        "serve/epochs_retired",
        format!("{}", s_mvcc.epochs_retired),
        &format_f64(s_mvcc.epochs_retired as f64),
    );

    // ---- Multi-tenant host: two tenants behind one pool and a
    // background serve loop, mixed reads and updates per tenant.
    let host_reads_per_tenant = 2 * Algorithm::all().len();
    let mut hcfg = HostConfig::new();
    hcfg.serve_workers = 3;
    hcfg.global_inflight = 4 * host_reads_per_tenant;
    hcfg.tenant_quota = 2 * host_reads_per_tenant;
    let host = EngineHost::new(hcfg);
    host.add_tenant("alpha", &g, EngineConfig::new(p))
        .expect("fresh name");
    let gb = cetric::gen::rgg2d_default(n / 2, 7);
    host.add_tenant("beta", &gb, EngineConfig::new(2))
        .expect("fresh name");
    let t0 = Instant::now();
    let handle = host.serve();
    for i in 0..host_reads_per_tenant {
        for tenant in ["alpha", "beta"] {
            host.submit(HostRequest::Query {
                tenant: tenant.to_string(),
                query: read_query(i),
            })
            .expect("under quota");
        }
        if i == 2 {
            host.submit(HostRequest::Update {
                tenant: "alpha".to_string(),
                batch: batches[0].clone(),
            })
            .expect("updates always enqueue");
        }
    }
    handle.stop();
    host.drain();
    let host_seconds = t0.elapsed().as_secs_f64();
    let replies = host.poll();
    let host_answers = replies
        .iter()
        .filter(|r| matches!(r, HostReply::Answer { .. }))
        .count();
    assert_eq!(host_answers, 2 * host_reads_per_tenant);
    push(
        &mut rows,
        &mut report,
        "serve/host_answered",
        format!("{host_answers}"),
        &format_f64(host_answers as f64),
    );
    push(
        &mut rows,
        &mut report,
        "serve/host_wall_seconds",
        fmt_time(host_seconds),
        &format_f64(host_seconds),
    );

    print_table(
        &format!(
            "mixed read/update serving, rgg2d n={n} on {p} PEs, {reads_total} reads / {rounds} updates"
        ),
        &["value"],
        &rows,
    );
    match report.write() {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_serve.json: {e}"),
    }
}

//! Ablations of the design choices DESIGN.md calls out:
//! * the flush threshold δ (memory vs message-count trade-off, §IV-A);
//! * surrogate deduplication on/off (§IV-D);
//! * direct vs grid routing at a hotspot (fan-in, §IV-B);
//! * degree vs id ordering (work reduction, §III).

use cetric::core::seq;
use cetric::prelude::*;
use tricount_bench::{fmt_count, fmt_time, print_table, Row, Scale};

fn main() {
    let scale = Scale::from_env();
    let model = CostModel::supermuc();
    let n = 1u64 << (10 + scale.shift());
    let g = cetric::gen::rmat_default(n.trailing_zeros(), 17);
    let p = 16;
    println!(
        "ablations on RMAT proxy: n={} m={} p={p}",
        g.num_vertices(),
        g.num_edges()
    );

    // 1. δ sweep
    let mut rows = Vec::new();
    for factor in [0.01, 0.05, 0.25, 1.0, 4.0] {
        let cfg = DistConfig {
            aggregation: Aggregation::Dynamic {
                delta_factor: factor,
            },
            ..DistConfig::default()
        };
        let r = count_with(&g, p, Algorithm::Ditric, &cfg).unwrap();
        rows.push(Row {
            label: format!("delta={factor}|E_i|"),
            cells: vec![
                fmt_count(r.stats.total_messages()),
                fmt_count(r.stats.max_peak_buffered()),
                fmt_time(r.modeled_time(&model)),
            ],
        });
    }
    print_table(
        "ablation: flush threshold delta (DITRIC)",
        &["messages", "peak buffer", "time"],
        &rows,
    );

    // 2. surrogate dedup
    let mut rows = Vec::new();
    for dedup in [true, false] {
        let cfg = DistConfig {
            dedup,
            ..DistConfig::default()
        };
        let r = count_with(&g, p, Algorithm::Ditric, &cfg).unwrap();
        rows.push(Row {
            label: format!("dedup={dedup}"),
            cells: vec![
                fmt_count(r.stats.total_volume()),
                fmt_count(r.stats.total_messages()),
                fmt_time(r.modeled_time(&model)),
            ],
        });
    }
    print_table(
        "ablation: surrogate deduplication (DITRIC)",
        &["volume", "messages", "time"],
        &rows,
    );

    // 3. routing fan-in at the hub owner's PE
    let mut rows = Vec::new();
    for (label, alg) in [("direct", Algorithm::Ditric), ("grid", Algorithm::Ditric2)] {
        let r = count(&g, p, alg).unwrap();
        let max_recv_peers = r
            .stats
            .phases
            .last()
            .unwrap()
            .per_rank
            .iter()
            .map(|c| c.recv_peers)
            .max()
            .unwrap();
        rows.push(Row {
            label: label.to_string(),
            cells: vec![
                format!("{max_recv_peers}"),
                fmt_count(r.stats.total_volume()),
                fmt_time(r.modeled_time(&model)),
            ],
        });
    }
    print_table(
        "ablation: routing (global phase fan-in)",
        &["max recv peers", "volume", "time"],
        &rows,
    );

    // 4. ordering
    let mut rows = Vec::new();
    for (label, ordering) in [("degree", OrderingKind::Degree), ("id", OrderingKind::Id)] {
        let cfg = DistConfig {
            ordering,
            ..DistConfig::default()
        };
        let r = count_with(&g, p, Algorithm::Ditric, &cfg).unwrap();
        rows.push(Row {
            label: label.to_string(),
            cells: vec![
                fmt_count(r.stats.total_work()),
                fmt_count(r.stats.total_volume()),
                fmt_time(r.modeled_time(&model)),
            ],
        });
    }
    print_table(
        "ablation: orientation order (DITRIC)",
        &["work (ops)", "volume", "time"],
        &rows,
    );
    // 5. partitioning strategy (the §IV-D load-balancing discussion):
    //    contiguous prefix-sum splits with different degree cost functions
    let mut rows = Vec::new();
    let strategies: [(&str, Partition); 4] = [
        (
            "vertex-balanced",
            Partition::balanced_vertices(g.num_vertices(), p),
        ),
        ("cost d", Partition::balanced_by_cost(&g, p, |d| d)),
        ("cost d^2", Partition::balanced_by_cost(&g, p, |d| d * d)),
        (
            "cost d*log d",
            Partition::balanced_by_cost(&g, p, |d| d * (64 - d.leading_zeros() as u64)),
        ),
    ];
    for (label, part) in strategies {
        let dg = DistGraph::with_partition(&g, part);
        let r = cetric::core::run_on_default(dg, Algorithm::Ditric, &Algorithm::Ditric.config())
            .unwrap();
        // work imbalance: busiest PE vs average
        let per_rank_work: Vec<u64> = (0..p)
            .map(|rk| {
                r.stats
                    .phases
                    .iter()
                    .map(|ph| ph.per_rank[rk].work_ops)
                    .sum::<u64>()
            })
            .collect();
        let max = *per_rank_work.iter().max().unwrap() as f64;
        let mean = per_rank_work.iter().sum::<u64>() as f64 / p as f64;
        rows.push(Row {
            label: label.to_string(),
            cells: vec![
                format!("{:.2}", max / mean.max(1.0)),
                fmt_count(r.stats.bottleneck_volume()),
                fmt_time(r.modeled_time(&model)),
            ],
        });
    }
    print_table(
        "ablation: 1D partitioning strategy (DITRIC)",
        &["work imbalance (max/mean)", "bottleneck vol", "time"],
        &rows,
    );

    // 6. degree exchange: dense vs sparse on skewed (RMAT) vs few-partner
    //    (road) inputs — §IV-D's preliminary experiment
    let road = cetric::gen::road_default(n, 17);
    let mut rows = Vec::new();
    for (gname, gr) in [("RMAT", &g), ("road", &road)] {
        for (ename, de) in [
            ("dense", cetric::core::config::DegreeExchange::Dense),
            ("sparse", cetric::core::config::DegreeExchange::Sparse),
        ] {
            let cfg = DistConfig {
                degree_exchange: de,
                ..DistConfig::default()
            };
            let r = count_with(gr, p, Algorithm::Ditric, &cfg).unwrap();
            let pre_msgs: u64 = r
                .stats
                .phases
                .iter()
                .filter(|ph| ph.name == "preprocessing")
                .flat_map(|ph| ph.per_rank.iter())
                .map(|c| c.sent_messages)
                .sum();
            rows.push(Row {
                label: format!("{gname}/{ename}"),
                cells: vec![
                    fmt_count(pre_msgs),
                    fmt_time(r.stats.phase_time("preprocessing", &model)),
                    fmt_time(r.modeled_time(&model)),
                ],
            });
        }
    }
    print_table(
        "ablation: ghost degree exchange (DITRIC)",
        &["preproc msgs", "preproc time", "total time"],
        &rows,
    );

    // 7. rebalancing via message passing (§IV-D: "does not pay off")
    let mut rows = Vec::new();
    let plain = count_with(&g, p, Algorithm::Ditric, &DistConfig::default()).unwrap();
    rows.push(Row {
        label: "no rebalancing".to_string(),
        cells: vec![
            "-".to_string(),
            fmt_count(plain.stats.total_volume()),
            fmt_time(plain.modeled_time(&model)),
        ],
    });
    let rb = cetric::core::dist::rebalance::count_rebalanced(
        &g,
        p,
        Algorithm::Ditric,
        &DistConfig::default(),
        |d| d,
    )
    .unwrap();
    rows.push(Row {
        label: "rebalance (cost d)".to_string(),
        cells: vec![
            fmt_time(rb.stats.phase_time("rebalance", &model)),
            fmt_count(rb.stats.total_volume()),
            fmt_time(rb.modeled_time(&model)),
        ],
    });
    print_table(
        "ablation: message-passing rebalancing (DITRIC)",
        &["rebalance time", "total volume", "total time"],
        &rows,
    );

    // 8. 1D vs 2D (matrix/SpGEMM) counting — the §III-A2 scaling-wall claim
    let gn = cetric::gen::gnm(n, 16 * n, 7);
    let mut rows = Vec::new();
    for pq in [4usize, 16, 64] {
        let m2 = cetric::core::dist::matrix2d::count_matrix2d(&gn, pq);
        let d = count(&gn, pq, Algorithm::Ditric).unwrap();
        assert_eq!(m2.triangles, d.triangles);
        rows.push(Row {
            label: format!("p={pq}"),
            cells: vec![
                fmt_count(m2.stats.total_volume()),
                fmt_count(d.stats.total_volume()),
                fmt_time(m2.modeled_time(&model)),
                fmt_time(d.modeled_time(&model)),
            ],
        });
    }
    print_table(
        "ablation: 2D masked-SpGEMM vs DITRIC (GNM) — 2D volume grows with sqrt(p)",
        &["2D volume", "DITRIC volume", "2D time", "DITRIC time"],
        &rows,
    );
    println!(
        "(2D is competitive at small p — the literature's \"scales to a couple \
         hundred PEs\" — but its Θ(m·sqrt(p)) replication volume keeps growing \
         while 1D volume saturates at the input size: the ratio closes from \
         0.57x toward 1x already by p=64 and inverts beyond)"
    );

    let truth = seq::compact_forward(&g).triangles;
    println!("\n(all configurations verified against the exact count {truth})");
}

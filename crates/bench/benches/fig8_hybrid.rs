//! Figure 8 (appendix): hybrid parallelism on orkut — local-phase time,
//! total time and communication volume for a fixed core budget with varying
//! threads per MPI rank (cores = ranks × threads).

use cetric::core::dist::hybrid::count_hybrid;
use cetric::prelude::*;
use tricount_bench::{fmt_count, fmt_time, print_table, Row, Scale};

fn main() {
    let scale = Scale::from_env();
    let model = CostModel::supermuc();
    let n = 1u64 << (11 + scale.shift());
    let g = Dataset::Orkut.generate(n, 42);
    let cores = *scale.pe_counts().last().unwrap().max(&12);
    // round the core budget to something divisible by all thread counts
    let cores = cores.next_multiple_of(12);
    println!(
        "Fig. 8 reproduction: orkut proxy n={} m={}, core budget {cores}",
        g.num_vertices(),
        g.num_edges()
    );

    let cfg = DistConfig {
        routing: Routing::Grid, // the paper uses DITRIC² here
        ..DistConfig::default()
    };
    let mut rows = Vec::new();
    let mut baseline_vol = 0u64;
    for threads in [1usize, 2, 3, 4, 6, 12] {
        let r = count_hybrid(&g, cores, threads, &cfg);
        let local = r.stats.phase_time("local", &model);
        let total = r.modeled_time(&model);
        let vol = r.stats.total_volume();
        if threads == 1 {
            baseline_vol = vol;
        }
        rows.push(Row {
            label: format!("{} x {threads}t", cores / threads),
            cells: vec![
                fmt_time(local),
                fmt_time(r.stats.phase_time("global", &model)),
                fmt_time(total),
                fmt_count(vol),
                format!("-{:.0}%", 100.0 * (1.0 - vol as f64 / baseline_vol as f64)),
            ],
        });
    }
    print_table(
        &format!("Fig. 8: hybrid DITRIC2, {cores} cores (ranks x threads)"),
        &["local", "global", "total", "volume", "vol vs 1t"],
        &rows,
    );
    println!(
        "\npaper shapes: more threads/rank cut communication volume sharply \
         (fewer ranks → smaller cut; paper: −84% at 12 threads, we see the \
         same trend), while the funneled global phase does not parallelise \
         and limits the total. Note: per-rank local time *grows* with \
         threads here because intersections that were remote (global phase) \
         become local when ranks merge — the same work migration the paper's \
         local/global split shows."
    );
}

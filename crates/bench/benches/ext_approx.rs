//! §IV-E extension: AMQ-approximate type-3 counting. Sweeps filter type and
//! bits-per-key on GNM (everything is type-3) and an R-MAT proxy, reporting
//! estimate error and global-phase volume vs exact CETRIC.

use cetric::core::dist::approx::{approx, ApproxConfig, FilterKind};
use cetric::core::seq;
use cetric::prelude::*;
use tricount_bench::{fmt_count, print_table, Row, Scale};

fn global_volume(stats: &RunStats) -> u64 {
    stats
        .phases
        .iter()
        .filter(|ph| ph.name == "global")
        .map(|ph| ph.total_volume())
        .sum()
}

fn main() {
    let scale = Scale::from_env();
    let n = 1u64 << (10 + scale.shift());
    let p = 8;
    let instances: [(&str, Csr); 2] = [
        ("GNM", cetric::gen::gnm(n, 16 * n, 11)),
        ("RMAT", cetric::gen::rmat_default(n.trailing_zeros(), 11)),
    ];

    for (name, g) in &instances {
        let truth = seq::compact_forward(g).triangles;
        let exact = count(g, p, Algorithm::Cetric).unwrap();
        let ev = global_volume(&exact.stats);
        println!(
            "\ninstance {name}: n={} m={} triangles={truth}, exact global volume {}",
            g.num_vertices(),
            g.num_edges(),
            fmt_count(ev)
        );
        let mut rows = Vec::new();
        for filter in [FilterKind::Bloom, FilterKind::SingleShot] {
            for bits in [4.0, 8.0, 12.0, 16.0] {
                let r = approx(
                    g,
                    p,
                    &DistConfig::default(),
                    &ApproxConfig {
                        bits_per_key: bits,
                        filter,
                    },
                );
                let err = 100.0 * (r.estimate - truth as f64).abs() / truth.max(1) as f64;
                let av = global_volume(&r.stats);
                rows.push(Row {
                    label: format!("{filter:?} {bits}b/key"),
                    cells: vec![
                        format!("{:.1}", r.estimate),
                        format!("{err:.2}%"),
                        fmt_count(r.exact_local + r.type3_raw),
                        fmt_count(av),
                        format!("{:.2}x", av as f64 / ev as f64),
                    ],
                });
            }
        }
        print_table(
            &format!("approximate counting on {name} (p={p})"),
            &["estimate", "error", "raw(over)", "volume", "vs exact"],
            &rows,
        );
    }
    println!(
        "\nreading: the truthful estimator removes the AMQ's systematic \
         overcount; volume drops below exact once neighborhoods are large \
         relative to the filter, and single-shot filters are the more compact \
         wire format (footnote 2 of the paper)."
    );
}

//! Closed-loop benchmark of the resident query engine: build it once on an
//! RGG2D instance, then drive the scripted mixed workload through the
//! bounded queue (draining under backpressure) and report throughput,
//! per-kind latency and cache effectiveness. The full `EngineStats`
//! snapshot is embedded into `BENCH_engine.json` for tooling.

use std::time::Instant;

use cetric::engine::{scripted_workload, Engine, EngineConfig};
use tricount_bench::report::{format_f64, BenchReport};
use tricount_bench::{fmt_time, print_table, Row, Scale};

fn main() {
    let scale = Scale::from_env();
    let n = 1u64 << (9 + scale.shift());
    let queries = 300usize << scale.shift();
    let p = 4usize;

    let g = cetric::gen::rgg2d_default(n, 42);
    let mut report = BenchReport::new("engine", scale);
    let mut rows = Vec::new();
    let push =
        |rows: &mut Vec<Row>, report: &mut BenchReport, label: &str, cell: String, json: &str| {
            report.push_raw(label, json);
            rows.push(Row {
                label: label.to_string(),
                cells: vec![cell],
            });
        };

    // one-time setup: partition, orient, ghost exchange, contraction
    let t0 = Instant::now();
    let engine = Engine::build(&g, EngineConfig::new(p));
    let build = t0.elapsed().as_secs_f64();
    push(
        &mut rows,
        &mut report,
        "engine/build_seconds",
        fmt_time(build),
        &format_f64(build),
    );

    // closed loop: submit until backpressure, drain, resubmit
    let workload = scripted_workload(queries, g.num_vertices(), 7);
    let t0 = Instant::now();
    let mut answered = 0usize;
    for q in workload {
        loop {
            match engine.submit(q.clone()) {
                Ok(_) => break,
                Err(_) => answered += engine.tick().len(),
            }
        }
    }
    while engine.queue_depth() > 0 {
        answered += engine.tick().len();
    }
    let serve = t0.elapsed().as_secs_f64();
    assert_eq!(answered, queries, "closed loop must answer everything");

    let s = engine.stats();
    let throughput = answered as f64 / serve.max(1e-12);
    push(
        &mut rows,
        &mut report,
        "engine/serve_seconds",
        fmt_time(serve),
        &format_f64(serve),
    );
    push(
        &mut rows,
        &mut report,
        "engine/queries_per_second",
        format!("{throughput:.0}/s"),
        &format_f64(throughput),
    );
    push(
        &mut rows,
        &mut report,
        "engine/cache_hit_rate",
        format!("{:.1}%", s.cache_hit_rate() * 100.0),
        &format_f64(s.cache_hit_rate()),
    );
    push(
        &mut rows,
        &mut report,
        "engine/modeled_seconds_total",
        fmt_time(s.modeled_seconds_total),
        &format_f64(s.modeled_seconds_total),
    );

    // per-kind mean wall latency over the recorded queries
    for kind in ["global", "lcc", "support", "approx"] {
        let laps: Vec<f64> = s
            .per_query
            .iter()
            .filter(|r| r.kind == kind)
            .map(|r| r.wall_seconds)
            .collect();
        if laps.is_empty() {
            continue;
        }
        let mean = laps.iter().sum::<f64>() / laps.len() as f64;
        push(
            &mut rows,
            &mut report,
            &format!("engine/latency_mean/{kind}"),
            format!("{} (n={})", fmt_time(mean), laps.len()),
            &format_f64(mean),
        );
    }

    // log-bucketed latency quantiles from the engine's histograms
    for (label, sum) in [
        ("queue_wait", &s.queue_wait),
        ("run_wall", &s.run_wall),
        ("run_modeled", &s.run_modeled),
    ] {
        if sum.count == 0 {
            continue;
        }
        push(
            &mut rows,
            &mut report,
            &format!("engine/{label}_p50"),
            fmt_time(sum.p50),
            &format_f64(sum.p50),
        );
        push(
            &mut rows,
            &mut report,
            &format!("engine/{label}_p99"),
            format!("{} (max {})", fmt_time(sum.p99), fmt_time(sum.max)),
            &format_f64(sum.p99),
        );
    }
    let executed: u64 = s.pool.iter().map(|w| w.executed).sum();
    let steals: u64 = s.pool.iter().map(|w| w.steals_succeeded).sum();
    push(
        &mut rows,
        &mut report,
        "engine/pool_tasks_executed",
        format!("{executed} ({steals} stolen)"),
        &format_f64(executed as f64),
    );
    report.push_raw("engine/stats", &s.to_json());

    print_table(
        &format!("resident engine, rgg2d n={n} on {p} PEs, {queries} queries"),
        &["value"],
        &rows,
    );
    match report.write() {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_engine.json: {e}"),
    }
}

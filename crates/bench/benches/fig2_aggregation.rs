//! Figure 2: running time of the basic distributed EDGEITERATOR on the
//! friendster instance, with and without message aggregation.
//!
//! Series: modeled running time vs PE count, for the unaggregated baseline
//! (one message per cut edge) and DITRIC's dynamically buffered queue.

use cetric::prelude::*;
use tricount_bench::{fmt_count, fmt_time, print_table, Row, Scale};

fn main() {
    let scale = Scale::from_env();
    let n = 1u64 << (11 + scale.shift());
    let g = Dataset::Friendster.generate(n, 4);
    let model = CostModel::supermuc();
    println!(
        "Fig. 2 reproduction: friendster proxy n={} m={}",
        g.num_vertices(),
        g.num_edges()
    );

    let mut rows = Vec::new();
    for p in scale.pe_counts() {
        let unagg = count(&g, p, Algorithm::Unaggregated).unwrap();
        let agg = count(&g, p, Algorithm::Ditric).unwrap();
        assert_eq!(unagg.triangles, agg.triangles);
        rows.push(Row {
            label: format!("p={p}"),
            cells: vec![
                fmt_time(unagg.modeled_time(&model)),
                fmt_time(agg.modeled_time(&model)),
                format!(
                    "{:.1}x",
                    unagg.modeled_time(&model) / agg.modeled_time(&model)
                ),
                fmt_count(unagg.stats.max_sent_messages()),
                fmt_count(agg.stats.max_sent_messages()),
            ],
        });
    }
    print_table(
        "Fig. 2: message aggregation on friendster",
        &[
            "no aggregation",
            "with aggregation",
            "speedup",
            "msgs/PE (none)",
            "msgs/PE (agg)",
        ],
        &rows,
    );
    println!(
        "\npaper shape: aggregation is an order of magnitude faster because the \
         per-cut-edge variant pays a startup latency per tiny message."
    );
}

//! Figure 6: strong scaling on the eight real-world instances (proxies),
//! p = 2…64, all algorithm variants plus baselines. Cells report the same
//! triple as Fig. 5 (modeled time / max msgs per PE / bottleneck volume);
//! TriC-like runs under a memory cap and may report OOM, as in the paper.

use cetric::prelude::*;
use tricount_bench::{fmt_count, fmt_time, print_table, Row, Scale};

fn main() {
    let scale = Scale::from_env();
    let model = CostModel::supermuc();
    let n = 1u64 << (11 + scale.shift());
    let algs = [
        Algorithm::Ditric,
        Algorithm::Ditric2,
        Algorithm::Cetric,
        Algorithm::Cetric2,
        Algorithm::TricLike,
        Algorithm::HavoqgtLike,
    ];
    let col_names: Vec<&str> = algs.iter().map(|a| a.name()).collect();

    for ds in Dataset::all() {
        let g = ds.generate(n, 42);
        let mut rows = Vec::new();
        for p in scale.pe_counts() {
            // model a fixed per-PE memory budget of 48× the local input
            // size (generous, like the paper's 2 GB/core nodes relative to
            // the per-PE slice) — static buffering fails once the outgoing
            // volume outgrows it
            let dg = DistGraph::new_balanced_vertices(&g, p);
            let cap = 48
                * (0..p)
                    .map(|r| dg.local(r).num_local_entries())
                    .max()
                    .unwrap();
            let cells = algs
                .iter()
                .map(|&alg| {
                    let cfg = if alg == Algorithm::TricLike {
                        DistConfig {
                            memory_limit_words: Some(cap),
                            ..alg.config()
                        }
                    } else {
                        alg.config()
                    };
                    match count_with(&g, p, alg, &cfg) {
                        Ok(r) => format!(
                            "{} {} {}",
                            fmt_time(r.modeled_time(&model)),
                            fmt_count(r.stats.max_sent_messages()),
                            fmt_count(r.stats.bottleneck_volume())
                        ),
                        Err(DistError::OutOfMemory { .. }) => "OOM".to_string(),
                        Err(DistError::Deadlock { .. }) => "DEADLOCK".to_string(),
                    }
                })
                .collect();
            rows.push(Row {
                label: format!("p={p}"),
                cells,
            });
        }
        print_table(
            &format!(
                "Fig. 6 ({}): strong scaling, proxy n={} m={} — cells: time / max msgs/PE / bottleneck words",
                ds.paper_stats().name,
                g.num_vertices(),
                g.num_edges()
            ),
            &col_names,
            &rows,
        );
    }
    println!(
        "\npaper shapes: our variants lead on the social/web instances; \
         TriC-like OOMs on the skewed ones but is competitive on roads at \
         small p; indirect variants pay off only at the largest PE counts."
    );
}

//! Table I: instance statistics — n, m, wedges, triangles — for the
//! real-world datasets, printed as paper-value vs proxy-value pairs.
//!
//! The proxies are scaled-down synthetic graphs with the same family
//! character (see `tricount-gen::datasets`); this harness regenerates the
//! table so EXPERIMENTS.md can compare densities and skew, not absolute
//! sizes.

use cetric::core::seq;
use cetric::prelude::*;
use tricount_bench::{fmt_count, print_table, Row, Scale};

fn main() {
    let scale = Scale::from_env();
    let n_proxy = 1u64 << (11 + scale.shift());
    println!("Table I reproduction: proxy instances at n ≈ {n_proxy} (paper sizes in parentheses)");

    let mut rows = Vec::new();
    for ds in Dataset::all() {
        let paper = ds.paper_stats();
        let g = ds.generate(n_proxy, 42);
        let s = seq::compact_forward(&g);
        let wedges = g.num_wedges();
        rows.push(Row {
            label: paper.name.to_string(),
            cells: vec![
                paper.family.to_string(),
                format!("{} ({})", fmt_count(g.num_vertices()), fmt_count(paper.n)),
                format!("{} ({})", fmt_count(g.num_edges()), fmt_count(paper.m)),
                format!("{} ({})", fmt_count(wedges), fmt_count(paper.wedges)),
                format!(
                    "{} ({})",
                    fmt_count(s.triangles),
                    fmt_count(paper.triangles)
                ),
                format!(
                    "{:.3} ({:.3})",
                    s.triangles as f64 / g.num_edges() as f64,
                    paper.triangles as f64 / paper.m as f64
                ),
                format!(
                    "{:.1} ({:.1})",
                    2.0 * g.num_edges() as f64 / g.num_vertices() as f64,
                    2.0 * paper.m as f64 / paper.n as f64
                ),
            ],
        });
    }
    print_table(
        "Table I: proxy (paper)",
        &[
            "family",
            "n",
            "m",
            "wedges",
            "triangles",
            "tri/edge",
            "avg deg",
        ],
        &rows,
    );
    println!(
        "\nnote: proxies reproduce family character (degree skew, clustering, \
         locality), not absolute sizes; tri/edge and avg-deg columns are the \
         comparable densities."
    );
}

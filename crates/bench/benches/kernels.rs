//! Micro-benchmarks of the hot kernels: the set-intersection variants
//! (§III / §III-C), sequential counting, the oriented preprocessing, the
//! Bloom filters of the approximate extension, and the simulated
//! distributed pipeline end to end.
//!
//! A plain self-timing harness (median of repeated batches over a
//! monotonic clock) — the workspace builds offline, so there is no
//! criterion; the other `benches/` targets set the table-printing idiom
//! this follows.

use std::hint::black_box;
use std::time::Instant;

use cetric::amq::{Amq, BloomFilter, SingleShotBloom};
use cetric::core::seq;
use cetric::graph::compressed::CompressedCsr;
use cetric::graph::intersect::{binary_search_count, gallop_count, merge_count};
use cetric::graph::ordering::{orient, relabel_by_degree, OrderingKind};
use tricount_bench::report::BenchReport;
use tricount_bench::{fmt_time, print_table, Row, Scale};

/// Times `f` as the median over `reps` batches of `batch` calls, returning
/// seconds per call.
fn time_per_call<R>(reps: usize, batch: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            t0.elapsed().as_secs_f64() / batch as f64
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn lists(n: usize, stride_a: u64, stride_b: u64) -> (Vec<u64>, Vec<u64>) {
    (
        (0..n as u64).map(|i| i * stride_a).collect(),
        (0..n as u64).map(|i| i * stride_b).collect(),
    )
}

/// One intersection micro-benchmark: label plus the kernel to time.
type Kernel<'a> = Box<dyn Fn() -> u64 + 'a>;

fn bench_intersections(reps: usize, rows: &mut Vec<Row>, report: &mut BenchReport) {
    let (a, b) = lists(1024, 2, 3);
    let (small, _) = lists(16, 97, 1);
    let large: Vec<u64> = (0..65536u64).collect();
    let cases: [(&str, Kernel); 6] = [
        (
            "intersect/merge/balanced",
            Box::new(|| merge_count(&a, &b).0),
        ),
        (
            "intersect/bsearch/balanced",
            Box::new(|| binary_search_count(&a, &b).0),
        ),
        (
            "intersect/gallop/balanced",
            Box::new(|| gallop_count(&a, &b).0),
        ),
        (
            "intersect/merge/skewed",
            Box::new(|| merge_count(&small, &large).0),
        ),
        (
            "intersect/bsearch/skewed",
            Box::new(|| binary_search_count(&small, &large).0),
        ),
        (
            "intersect/gallop/skewed",
            Box::new(|| gallop_count(&small, &large).0),
        ),
    ];
    for (name, f) in cases {
        let t = time_per_call(reps, 64, &*f);
        report.push_seconds(name, t);
        rows.push(Row {
            label: name.to_string(),
            cells: vec![fmt_time(t)],
        });
    }
}

/// One full counting sweep over an oriented adjacency: for every directed
/// edge `(v, u)` intersect `A(v) ∩ A(u)` through the dispatcher. This is
/// the access pattern of the distributed local phase, reproduced
/// sequentially so the ablation isolates kernel choice from simulator
/// overhead.
fn dispatch_sweep(
    o: &cetric::graph::Csr,
    policy: cetric::graph::kernels::KernelPolicy,
    hubs: &cetric::graph::kernels::HubIndex,
) -> u64 {
    let mut d = cetric::graph::kernels::Dispatcher::with_hubs(policy, hubs);
    let mut total = 0u64;
    for v in o.vertices() {
        let av = o.neighbors(v);
        for &u in av {
            total += d.count(av, Some(v), o.neighbors(u), Some(u)).0;
        }
    }
    total
}

/// The kernel-ablation matrix: fixture skew × hub-index threshold ×
/// kernel. Emits per-cell wall times plus `speedup_vs_merge/...` ratios
/// (>1 means faster than the merge baseline); CI fails when the adaptive
/// dispatcher loses to merge on the skewed fixtures.
fn bench_kernel_ablation(scale: Scale, reps: usize, rows: &mut Vec<Row>, report: &mut BenchReport) {
    use cetric::graph::kernels::{HubIndex, KernelChoice, KernelPolicy};
    use cetric::graph::Csr;

    let s = 10 + scale.shift();
    let n = 1u64 << s;
    let fixtures: Vec<(&str, Csr)> = vec![
        ("uniform", cetric::gen::gnm(n, 8 * n, 11)),
        ("skewed", cetric::gen::rmat_default(s, 11)),
        ("hub_heavy", cetric::gen::rmat_hub_heavy(s, 11)),
    ];
    let kernels = [
        KernelChoice::Merge,
        KernelChoice::Gallop,
        KernelChoice::Binary,
        KernelChoice::Bitmap,
        KernelChoice::Auto,
    ];
    for (fixture, g) in &fixtures {
        // Id orientation keeps the hub out-lists huge (hubs sit at low
        // ids): the adversarial case the adaptive kernels are built for.
        let o = orient(g, OrderingKind::Id);
        // Hub-fraction axis: the aggressive threshold indexes far more
        // lists than the default.
        for threshold in [64u64, 256] {
            let hubs = HubIndex::build(o.vertices().map(|v| (v, o.neighbors(v))), threshold);
            let mut merge_seconds = 0.0f64;
            let mut merge_count_total = 0u64;
            for kernel in kernels {
                let policy = KernelPolicy {
                    kernel,
                    hub_threshold: threshold,
                    ..KernelPolicy::default()
                };
                let count = dispatch_sweep(&o, policy, &hubs); // warm + verify
                if kernel == KernelChoice::Merge {
                    merge_count_total = count;
                } else {
                    assert_eq!(
                        count,
                        merge_count_total,
                        "{fixture}/t{threshold}/{}: count mismatch vs merge",
                        kernel.name()
                    );
                }
                let t = time_per_call(reps, 1, || dispatch_sweep(&o, policy, &hubs));
                let label = format!("kernel_matrix/{fixture}/t{threshold}/{}", kernel.name());
                report.push_seconds(&label, t);
                let speedup = if kernel == KernelChoice::Merge {
                    merge_seconds = t;
                    1.0
                } else {
                    merge_seconds / t
                };
                report.push_raw(
                    &format!("speedup_vs_merge/{fixture}/t{threshold}/{}", kernel.name()),
                    &tricount_bench::report::format_f64(speedup),
                );
                rows.push(Row {
                    label,
                    cells: vec![fmt_time(t), format!("{speedup:.2}x")],
                });
            }
        }
    }
}

fn bench_sequential_counting(reps: usize, rows: &mut Vec<Row>, report: &mut BenchReport) {
    let graph = cetric::gen::rmat_default(12, 7);
    let compressed = CompressedCsr::from_csr(&graph);
    let t = time_per_call(reps, 2, || seq::compact_forward(black_box(&graph)));
    report.push_seconds("seq/compact_forward/rmat12", t);
    rows.push(Row {
        label: "seq/compact_forward/rmat12".into(),
        cells: vec![fmt_time(t)],
    });
    let t = time_per_call(reps, 2, || {
        seq::edge_iterator(black_box(&graph), OrderingKind::Id)
    });
    report.push_seconds("seq/edge_iterator_id/rmat12", t);
    rows.push(Row {
        label: "seq/edge_iterator_id/rmat12".into(),
        cells: vec![fmt_time(t)],
    });
    let t = time_per_call(reps, 2, || {
        seq::compact_forward_compressed(black_box(&compressed))
    });
    report.push_seconds("seq/compact_forward_compressed/rmat12", t);
    rows.push(Row {
        label: "seq/compact_forward_compressed/rmat12".into(),
        cells: vec![fmt_time(t)],
    });
}

fn bench_preprocessing(reps: usize, rows: &mut Vec<Row>, report: &mut BenchReport) {
    let graph = cetric::gen::rhg_default(1 << 12, 3);
    let t = time_per_call(reps, 4, || orient(black_box(&graph), OrderingKind::Degree));
    report.push_seconds("preprocess/orient_degree", t);
    rows.push(Row {
        label: "preprocess/orient_degree".into(),
        cells: vec![fmt_time(t)],
    });
    let t = time_per_call(reps, 4, || relabel_by_degree(black_box(&graph)));
    report.push_seconds("preprocess/relabel_by_degree", t);
    rows.push(Row {
        label: "preprocess/relabel_by_degree".into(),
        cells: vec![fmt_time(t)],
    });
}

fn bench_bloom(reps: usize, rows: &mut Vec<Row>, report: &mut BenchReport) {
    let keys: Vec<u64> = (0..256u64).map(|i| i * 7919).collect();
    let t = time_per_call(reps, 16, || {
        let mut f = BloomFilter::new(keys.len(), 8.0);
        for &k in &keys {
            f.insert(k);
        }
        keys.iter().filter(|&&k| f.contains(k + 1)).count()
    });
    report.push_seconds("amq/bloom/build+query", t);
    rows.push(Row {
        label: "amq/bloom/build+query".into(),
        cells: vec![fmt_time(t)],
    });
    let t = time_per_call(reps, 16, || {
        let mut f = SingleShotBloom::new(keys.len(), 8.0, 4);
        for &k in &keys {
            f.insert(k);
        }
        keys.iter().filter(|&&k| f.contains(k + 1)).count()
    });
    report.push_seconds("amq/single_shot/build+query", t);
    rows.push(Row {
        label: "amq/single_shot/build+query".into(),
        cells: vec![fmt_time(t)],
    });
}

fn bench_distributed_end_to_end(rows: &mut Vec<Row>, report: &mut BenchReport) {
    // wall-clock of the whole simulated pipeline (not the modeled time):
    // useful to track regressions of the simulator itself
    let graph = cetric::gen::rgg2d_default(1 << 11, 5);
    for alg in [
        cetric::core::Algorithm::Cetric,
        cetric::core::Algorithm::Ditric,
    ] {
        let t = time_per_call(3, 1, || {
            cetric::core::count(black_box(&graph), 4, alg).unwrap()
        });
        let label = format!("dist_e2e/{}_p4/rgg2d_2k", alg.name());
        report.push_seconds(&label, t);
        rows.push(Row {
            label,
            cells: vec![fmt_time(t)],
        });
    }
}

fn main() {
    let scale = Scale::from_env();
    let reps = match scale {
        Scale::Quick => 3,
        Scale::Default => 7,
        Scale::Full => 15,
    };
    let mut rows = Vec::new();
    let mut report = BenchReport::new("kernels", scale);
    bench_intersections(reps, &mut rows, &mut report);
    bench_sequential_counting(reps, &mut rows, &mut report);
    bench_preprocessing(reps, &mut rows, &mut report);
    bench_bloom(reps, &mut rows, &mut report);
    bench_distributed_end_to_end(&mut rows, &mut report);
    print_table(
        "kernel micro-benchmarks (median wall time)",
        &["per call"],
        &rows,
    );
    let mut ablation_rows = Vec::new();
    bench_kernel_ablation(scale, reps, &mut ablation_rows, &mut report);
    print_table(
        "kernel ablation (fixture × hub threshold × kernel)",
        &["per sweep", "vs merge"],
        &ablation_rows,
    );
    match report.write() {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_kernels.json: {e}"),
    }
}

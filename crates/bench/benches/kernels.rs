//! Criterion micro-benchmarks of the hot kernels: the set-intersection
//! variants (§III / §III-C), the oriented preprocessing, the buffered
//! message queue, and the Bloom filters of the approximate extension.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use cetric::amq::{Amq, BloomFilter, SingleShotBloom};
use cetric::core::seq;
use cetric::graph::compressed::CompressedCsr;
use cetric::graph::intersect::{binary_search_count, gallop_count, merge_count};
use cetric::graph::ordering::{orient, relabel_by_degree, OrderingKind};

fn lists(n: usize, stride_a: u64, stride_b: u64) -> (Vec<u64>, Vec<u64>) {
    (
        (0..n as u64).map(|i| i * stride_a).collect(),
        (0..n as u64).map(|i| i * stride_b).collect(),
    )
}

fn bench_intersections(c: &mut Criterion) {
    let mut g = c.benchmark_group("intersect");
    let (a, b) = lists(1024, 2, 3);
    g.bench_function("merge/balanced", |bch| {
        bch.iter(|| merge_count(black_box(&a), black_box(&b)))
    });
    g.bench_function("bsearch/balanced", |bch| {
        bch.iter(|| binary_search_count(black_box(&a), black_box(&b)))
    });
    g.bench_function("gallop/balanced", |bch| {
        bch.iter(|| gallop_count(black_box(&a), black_box(&b)))
    });
    let (small, _) = lists(16, 97, 1);
    let large: Vec<u64> = (0..65536u64).collect();
    g.bench_function("merge/skewed", |bch| {
        bch.iter(|| merge_count(black_box(&small), black_box(&large)))
    });
    g.bench_function("bsearch/skewed", |bch| {
        bch.iter(|| binary_search_count(black_box(&small), black_box(&large)))
    });
    g.bench_function("gallop/skewed", |bch| {
        bch.iter(|| gallop_count(black_box(&small), black_box(&large)))
    });
    g.finish();
}

fn bench_sequential_counting(c: &mut Criterion) {
    let mut g = c.benchmark_group("seq_count");
    let graph = cetric::gen::rmat_default(12, 7);
    g.bench_function("compact_forward/rmat12", |bch| {
        bch.iter(|| seq::compact_forward(black_box(&graph)))
    });
    g.bench_function("edge_iterator_id/rmat12", |bch| {
        bch.iter(|| seq::edge_iterator(black_box(&graph), OrderingKind::Id))
    });
    let compressed = CompressedCsr::from_csr(&graph);
    g.bench_function("compact_forward_compressed/rmat12", |bch| {
        bch.iter(|| seq::compact_forward_compressed(black_box(&compressed)))
    });
    g.finish();
}

fn bench_preprocessing(c: &mut Criterion) {
    let mut g = c.benchmark_group("preprocess");
    let graph = cetric::gen::rhg_default(1 << 12, 3);
    g.bench_function("orient_degree", |bch| {
        bch.iter(|| orient(black_box(&graph), OrderingKind::Degree))
    });
    g.bench_function("relabel_by_degree", |bch| {
        bch.iter(|| relabel_by_degree(black_box(&graph)))
    });
    g.finish();
}

fn bench_bloom(c: &mut Criterion) {
    let mut g = c.benchmark_group("amq");
    let keys: Vec<u64> = (0..256u64).map(|i| i * 7919).collect();
    g.bench_function("bloom/build+query", |bch| {
        bch.iter_batched(
            || keys.clone(),
            |keys| {
                let mut f = BloomFilter::new(keys.len(), 8.0);
                for &k in &keys {
                    f.insert(k);
                }
                keys.iter().filter(|&&k| f.contains(k + 1)).count()
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("single_shot/build+query", |bch| {
        bch.iter_batched(
            || keys.clone(),
            |keys| {
                let mut f = SingleShotBloom::new(keys.len(), 8.0, 4);
                for &k in &keys {
                    f.insert(k);
                }
                keys.iter().filter(|&&k| f.contains(k + 1)).count()
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_distributed_end_to_end(c: &mut Criterion) {
    // wall-clock of the whole simulated pipeline (not the modeled time):
    // useful to track regressions of the simulator itself
    let mut g = c.benchmark_group("dist_e2e");
    g.sample_size(10);
    let graph = cetric::gen::rgg2d_default(1 << 11, 5);
    g.bench_function("cetric_p4/rgg2d_2k", |bch| {
        bch.iter(|| {
            cetric::core::count(black_box(&graph), 4, cetric::core::Algorithm::Cetric).unwrap()
        })
    });
    g.bench_function("ditric_p4/rgg2d_2k", |bch| {
        bch.iter(|| {
            cetric::core::count(black_box(&graph), 4, cetric::core::Algorithm::Ditric).unwrap()
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_intersections,
    bench_sequential_counting,
    bench_preprocessing,
    bench_bloom,
    bench_distributed_end_to_end
);
criterion_main!(benches);

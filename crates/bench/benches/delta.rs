//! Closed-loop benchmark of dynamic graph updates: build a resident engine
//! on an RGG2D instance, then stream random mixed edge-update batches
//! through `Engine::apply_updates` and report update throughput, modeled
//! communication words per update, the incremental-vs-rebuild comm ratio,
//! and the cost of overlay compaction. Results land in `BENCH_delta.json`.

use std::time::Instant;

use cetric::delta::random_batch;
use cetric::engine::{Engine, EngineConfig};
use tricount_bench::report::{format_f64, BenchReport};
use tricount_bench::{fmt_time, print_table, Row, Scale};

fn main() {
    let scale = Scale::from_env();
    let n = 1u64 << (10 + scale.shift());
    let batches = 20usize << scale.shift();
    let batch_ops = 16usize;
    let p = 4usize;

    let g = cetric::gen::rgg2d_default(n, 42);
    let mut report = BenchReport::new("delta", scale);
    let mut rows = Vec::new();
    let push =
        |rows: &mut Vec<Row>, report: &mut BenchReport, label: &str, cell: String, json: &str| {
            report.push_raw(label, json);
            rows.push(Row {
                label: label.to_string(),
                cells: vec![cell],
            });
        };

    let t0 = Instant::now();
    let engine = Engine::build(&g, EngineConfig::new(p));
    let build = t0.elapsed().as_secs_f64();
    let build_words = {
        let s = engine.setup_stats().totals();
        let b = engine.baseline_stats().totals();
        s.sent_words + s.coll_word_units + b.sent_words + b.coll_word_units
    };
    push(
        &mut rows,
        &mut report,
        "delta/build_seconds",
        fmt_time(build),
        &format_f64(build),
    );
    push(
        &mut rows,
        &mut report,
        "delta/build_comm_words",
        format!("{build_words}"),
        &format_f64(build_words as f64),
    );

    // closed loop: apply batches back to back, tracking the receipts
    let mut ops_applied = 0u64;
    let mut update_words = 0u64;
    let mut update_modeled = 0.0f64;
    let mut compactions = 0u64;
    let t0 = Instant::now();
    for i in 0..batches {
        // regenerate against the engine's current vertex set; the batch
        // mixes deletions of present edges with insertions of absent ones
        let batch = random_batch(&g, batch_ops, 1000 + i as u64);
        let receipt = engine.apply_updates(&batch).expect("in-range batch");
        ops_applied += receipt.inserted + receipt.deleted + receipt.noops;
        update_words += receipt.comm.sent_words + receipt.comm.coll_word_units;
        update_modeled += receipt.modeled_seconds;
        if receipt.compacted {
            compactions += 1;
        }
    }
    let serve = t0.elapsed().as_secs_f64();

    let s = engine.stats();
    let updates_per_second = s.updates_applied as f64 / serve.max(1e-12);
    let words_per_update = update_words as f64 / s.updates_applied.max(1) as f64;
    push(
        &mut rows,
        &mut report,
        "delta/apply_seconds",
        fmt_time(serve),
        &format_f64(serve),
    );
    push(
        &mut rows,
        &mut report,
        "delta/updates_per_second",
        format!("{updates_per_second:.0}/s"),
        &format_f64(updates_per_second),
    );
    push(
        &mut rows,
        &mut report,
        "delta/ops_applied",
        format!(
            "{ops_applied} ({} ins, {} del, {} noop)",
            s.edges_inserted, s.edges_deleted, s.update_noops
        ),
        &format_f64(ops_applied as f64),
    );
    push(
        &mut rows,
        &mut report,
        "delta/comm_words_per_update",
        format!("{words_per_update:.0}"),
        &format_f64(words_per_update),
    );
    push(
        &mut rows,
        &mut report,
        "delta/update_vs_build_comm_ratio",
        format!("{:.4}", words_per_update / build_words.max(1) as f64),
        &format_f64(words_per_update / build_words.max(1) as f64),
    );
    push(
        &mut rows,
        &mut report,
        "delta/modeled_seconds_per_update",
        fmt_time(update_modeled / s.updates_applied.max(1) as f64),
        &format_f64(update_modeled / s.updates_applied.max(1) as f64),
    );
    push(
        &mut rows,
        &mut report,
        "delta/compactions",
        format!("{compactions} (threshold) + read-your-writes"),
        &format_f64(compactions as f64),
    );

    push(
        &mut rows,
        &mut report,
        "delta/compaction_comm_words",
        format!(
            "{}",
            s.compaction_comm.sent_words + s.compaction_comm.coll_word_units
        ),
        &format_f64((s.compaction_comm.sent_words + s.compaction_comm.coll_word_units) as f64),
    );
    report.push_raw("delta/stats", &s.to_json());

    print_table(
        &format!("dynamic updates, rgg2d n={n} on {p} PEs, {batches} batches x {batch_ops} ops"),
        &["value"],
        &rows,
    );
    match report.write() {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_delta.json: {e}"),
    }
}

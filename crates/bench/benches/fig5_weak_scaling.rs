//! Figure 5: weak scaling on RGG2D, RHG, GNM and R-MAT, comparing DITRIC,
//! DITRIC², CETRIC, CETRIC² against the TriC-like and HavoqGT-like
//! baselines. Three series per algorithm, as in the paper: total modeled
//! running time, maximum number of outgoing messages over all PEs, and
//! bottleneck communication volume.
//!
//! Problem size per PE is fixed (paper: RGG 2¹⁸, GNM 2¹⁶ vertices/PE; here
//! scaled down by the host budget), total size grows with p.

use cetric::prelude::*;
use tricount_bench::{print_table, run_cell, Row, Scale};

fn main() {
    let scale = Scale::from_env();
    let model = CostModel::supermuc();
    // vertices per PE by family (paper: RGG/RHG 2^18, GNM 2^16, RMAT small)
    let per_pe = |fam: Family| -> u64 {
        match fam {
            Family::Rgg2d | Family::Rhg => 1u64 << (8 + scale.shift()),
            Family::Gnm => 1u64 << (7 + scale.shift()),
            Family::Rmat => 1u64 << (7 + scale.shift()),
        }
    };
    let algs = [
        Algorithm::Ditric,
        Algorithm::Ditric2,
        Algorithm::Cetric,
        Algorithm::Cetric2,
        Algorithm::TricLike,
        Algorithm::HavoqgtLike,
    ];
    let col_names: Vec<&str> = algs.iter().map(|a| a.name()).collect();

    for fam in Family::all() {
        let npp = per_pe(fam);
        let mut rows = Vec::new();
        for p in scale.pe_counts() {
            let n = npp * p as u64;
            let g = fam.generate(n, 1000 + p as u64);
            // TriC-like gets the memory cap that reproduces its crashes on
            // skewed inputs (32 × the per-PE input size)
            let cells = algs
                .iter()
                .map(|&alg| {
                    if alg == Algorithm::TricLike {
                        let dg = DistGraph::new_balanced_vertices(&g, p);
                        let cap = 32
                            * (0..p)
                                .map(|r| dg.local(r).num_local_entries())
                                .max()
                                .unwrap();
                        let cfg = DistConfig {
                            memory_limit_words: Some(cap),
                            ..alg.config()
                        };
                        match count_with(&g, p, alg, &cfg) {
                            Ok(r) => format!(
                                "{} {} {}",
                                tricount_bench_fmt_time(r.modeled_time(&model)),
                                tricount_bench::fmt_count(r.stats.max_sent_messages()),
                                tricount_bench::fmt_count(r.stats.bottleneck_volume())
                            ),
                            Err(_) => "OOM".to_string(),
                        }
                    } else {
                        run_cell(&g, p, alg, &model)
                    }
                })
                .collect();
            rows.push(Row {
                label: format!("p={p} (n={n})"),
                cells,
            });
        }
        print_table(
            &format!(
                "Fig. 5 ({}): weak scaling, {npp} vertices/PE — cells: time / max msgs/PE / bottleneck words",
                fam.name()
            ),
            &col_names,
            &rows,
        );
    }
    println!(
        "\npaper shapes: all our variants beat the baselines on RGG/RHG/RMAT; \
         TriC-like OOMs on skewed families; on GNM contraction does not pay \
         (no locality) and HavoqGT-like is competitive; indirect variants \
         trade volume for fewer peers."
    );
}

use tricount_bench::fmt_time as tricount_bench_fmt_time;

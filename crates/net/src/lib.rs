//! `tricount-net` — the pluggable transport layer under the simulated
//! runtime of `tricount-comm`.
//!
//! Every distributed protocol in this workspace talks to a per-PE
//! communicator (`tricount_comm::Ctx`). Historically that communicator was
//! welded to one data plane: `std::sync::mpsc` channels, a `std::sync`
//! [`Barrier`](std::sync::Barrier) and a mutex-guarded scratch area for
//! shared-memory collectives. This crate extracts that data plane behind
//! the [`Endpoint`] trait so the *same* protocol code runs over different
//! transports:
//!
//! * [`TransportKind::Sim`] — the original metered simulator data plane,
//!   bit-for-bit unchanged. It remains the substrate of the determinism,
//!   conformance and model-checking harnesses: delivery hooks
//!   (perturbation, `DeliveryPick`) and the blocking `Barrier` keep their
//!   exact semantics.
//! * [`TransportKind::Threads`] — a real parallel backend: one OS thread
//!   per PE over shared memory, point-to-point traffic through per-pair
//!   SPSC queues with an atomic occupancy hint (the poll path touches no
//!   lock until a message is actually present), a sense-reversing spin
//!   barrier, and per-slot deposit cells for the collectives. Peer panics
//!   *poison* the transport so sibling PEs fail fast instead of spinning
//!   forever — `tricount_comm::run_sim` then joins every thread and
//!   re-raises the first panic (no leaked PEs), while `run_guarded` turns
//!   a genuine stall into a watchdog report.
//!
//! The modeled α/β/t_op cost meters live *above* this layer (in the
//! communicator), so both backends produce the same modeled seconds and
//! comm counters; the threads backend additionally yields honest
//! wall-clock per phase, which the runtime records alongside the modeled
//! time. The probe binaries (`tricount-pingpong`, `tricount-allgather`)
//! measure the threads backend's real per-message latency and per-word
//! bandwidth and emit a JSON calibration report whose constants feed
//! `tricount_comm::CostModel::calibrated`.

#![warn(missing_docs)]

pub mod profile;
pub mod sim;
pub mod spin;
pub mod threads;

pub use profile::{
    ContentionMeters, ContentionSummary, PeWallLog, WallCollector, WallEvent, WallEventKind,
    WallProfile,
};
pub use sim::SimTransport;
pub use spin::SpinBarrier;
pub use threads::ThreadsTransport;

/// Which data plane carries a run's communication.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TransportKind {
    /// The metered simulator data plane (`std::sync::mpsc` + blocking
    /// barrier): deterministic substrate for verify/mc; supports delivery
    /// perturbation and external delivery control.
    #[default]
    Sim,
    /// Thread-per-PE over shared memory: SPSC pair queues, spin barrier,
    /// wall-clock-faithful parallel execution. Panics poison the transport
    /// so peers fail fast.
    Threads,
}

impl TransportKind {
    /// Stable lowercase name (CLI flag values, JSON reports).
    pub fn name(self) -> &'static str {
        match self {
            TransportKind::Sim => "sim",
            TransportKind::Threads => "threads",
        }
    }

    /// Parses a CLI flag value (`"sim"` / `"threads"`).
    pub fn parse(s: &str) -> Option<TransportKind> {
        match s {
            "sim" => Some(TransportKind::Sim),
            "threads" => Some(TransportKind::Threads),
            _ => None,
        }
    }
}

/// A raw point-to-point message: the sending rank and a word payload.
///
/// (Re-exported by `tricount-comm` as `RawMsg`; the transport moves it
/// verbatim and never inspects the payload.)
#[derive(Debug)]
pub struct Msg {
    /// Immediate sender (for relayed traffic this is the proxy, not the
    /// originator).
    pub src: usize,
    /// Per-`(src, dst)` sequence number assigned at send time; pairs the
    /// send with its delivery in traces and delivery-order hooks.
    pub seq: u64,
    /// Payload machine words.
    pub words: Vec<u64>,
    /// Simulated arrival time at the receiver (timed runs; 0 otherwise).
    pub arrival: f64,
}

/// One PE's handle on the data plane. Handed to the rank thread that owns
/// it; all methods are called from that thread only.
///
/// The contract every backend must honour:
///
/// * **Per-channel FIFO** — messages from a fixed `(src, dst)` pair are
///   received in send order (cross-channel order is unspecified, exactly
///   like MPI).
/// * **Loss-free between barriers** — a message sent before a barrier the
///   receiver passes is eventually returned by `try_recv`.
/// * **`exchange`/`exchange_matrix` are collectives** — every rank calls
///   them the same number of times in the same order; they synchronise
///   internally (deposit → barrier → collect → barrier).
pub trait Endpoint: Send {
    /// Which backend this endpoint belongs to.
    fn kind(&self) -> TransportKind;
    /// This endpoint's rank.
    fn rank(&self) -> usize;
    /// Number of PEs on the transport.
    fn peers(&self) -> usize;
    /// Enqueues `msg` for delivery to `to`. Never blocks; a vanished
    /// receiver (abandoned guarded run) swallows the message.
    fn send(&mut self, to: usize, msg: Msg);
    /// Non-blocking receive of one pending message, or `None`.
    fn try_recv(&mut self) -> Option<Msg>;
    /// Synchronises all PEs (no cost accounting at this layer).
    fn barrier(&self);
    /// All-gather rendezvous: deposits `data`, returns every rank's
    /// contribution indexed by rank.
    fn exchange(&mut self, data: Vec<u64>) -> Vec<Vec<u64>>;
    /// All-to-all rendezvous: `rows[d]` goes to rank `d`; returns what
    /// every rank sent here, indexed by source rank.
    fn exchange_matrix(&mut self, rows: Vec<Vec<u64>>) -> Vec<Vec<u64>>;
}

/// Builds the data plane for a `p`-PE run of the given backend and returns
/// one endpoint per rank (indexed by rank), ready to be moved into the
/// rank threads.
pub fn endpoints(kind: TransportKind, p: usize) -> Vec<Box<dyn Endpoint>> {
    assert!(p > 0, "need at least one PE");
    match kind {
        TransportKind::Sim => sim::SimTransport::endpoints(p),
        TransportKind::Threads => threads::ThreadsTransport::endpoints(p),
    }
}

/// Like [`endpoints`], but with wall-clock profiling where the backend
/// supports it. The threads backend returns a [`WallCollector`] to drain
/// after the rank threads are joined; the simulator has no wall clock
/// worth measuring (its schedule is a deterministic fiction), so it
/// returns plain endpoints and no collector.
pub fn endpoints_profiled(
    kind: TransportKind,
    p: usize,
    ring_capacity: usize,
) -> (
    Vec<Box<dyn Endpoint>>,
    Option<std::sync::Arc<WallCollector>>,
) {
    assert!(p > 0, "need at least one PE");
    match kind {
        TransportKind::Sim => (sim::SimTransport::endpoints(p), None),
        TransportKind::Threads => {
            let (eps, coll) = threads::ThreadsTransport::endpoints_profiled(p, ring_capacity);
            (eps, Some(coll))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(kind: TransportKind) {
        let p = 4;
        let eps = endpoints(kind, p);
        let results: Vec<u64> = std::thread::scope(|scope| {
            let handles: Vec<_> = eps
                .into_iter()
                .enumerate()
                .map(|(rank, mut ep)| {
                    scope.spawn(move || {
                        assert_eq!(ep.rank(), rank);
                        assert_eq!(ep.peers(), p);
                        assert_eq!(ep.kind(), kind);
                        for d in 0..p {
                            if d != rank {
                                ep.send(
                                    d,
                                    Msg {
                                        src: rank,
                                        seq: 0,
                                        words: vec![rank as u64 + 1],
                                        arrival: 0.0,
                                    },
                                );
                            }
                        }
                        let mut sum = 0u64;
                        let mut got = 0usize;
                        while got < p - 1 {
                            if let Some(m) = ep.try_recv() {
                                sum += m.words[0];
                                got += 1;
                            } else {
                                std::thread::yield_now();
                            }
                        }
                        ep.barrier();
                        sum
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let total: u64 = (1..=p as u64).sum();
        for (rank, sum) in results.iter().enumerate() {
            assert_eq!(*sum, total - (rank as u64 + 1), "rank {rank}");
        }
    }

    fn collectives(kind: TransportKind) {
        let p = 3;
        let eps = endpoints(kind, p);
        std::thread::scope(|scope| {
            for (rank, mut ep) in eps.into_iter().enumerate() {
                scope.spawn(move || {
                    // two consecutive exchanges must not smear into each other
                    for round in 0..2u64 {
                        let gathered = ep.exchange(vec![rank as u64 * 10 + round; rank + 1]);
                        for (src, v) in gathered.iter().enumerate() {
                            assert_eq!(v, &vec![src as u64 * 10 + round; src + 1]);
                        }
                    }
                    let rows: Vec<Vec<u64>> =
                        (0..p).map(|d| vec![(rank * 10 + d) as u64]).collect();
                    let incoming = ep.exchange_matrix(rows);
                    for (src, v) in incoming.iter().enumerate() {
                        assert_eq!(v, &vec![(src * 10 + rank) as u64]);
                    }
                });
            }
        });
    }

    #[test]
    fn sim_roundtrip_and_collectives() {
        roundtrip(TransportKind::Sim);
        collectives(TransportKind::Sim);
    }

    #[test]
    fn threads_roundtrip_and_collectives() {
        roundtrip(TransportKind::Threads);
        collectives(TransportKind::Threads);
    }

    #[test]
    fn threads_preserves_pair_fifo() {
        let eps = endpoints(TransportKind::Threads, 2);
        std::thread::scope(|scope| {
            let mut it = eps.into_iter();
            let mut a = it.next().unwrap();
            let mut b = it.next().unwrap();
            scope.spawn(move || {
                for seq in 0..1000u64 {
                    a.send(
                        1,
                        Msg {
                            src: 0,
                            seq,
                            words: vec![seq],
                            arrival: 0.0,
                        },
                    );
                }
                a.barrier();
            });
            scope.spawn(move || {
                let mut expect = 0u64;
                while expect < 1000 {
                    if let Some(m) = b.try_recv() {
                        assert_eq!(m.words[0], expect, "FIFO violated");
                        expect += 1;
                    } else {
                        std::hint::spin_loop();
                    }
                }
                b.barrier();
            });
        });
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in [TransportKind::Sim, TransportKind::Threads] {
            assert_eq!(TransportKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(TransportKind::parse("tcp"), None);
    }
}

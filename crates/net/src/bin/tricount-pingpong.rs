//! Ping-pong latency/bandwidth probe over the threads transport.
//!
//! Two PE threads bounce messages of increasing payload size; the
//! half-round-trip times are fitted with least squares to the α + βℓ
//! machine model of the paper (§II-B). The resulting constants are what
//! `tricount_comm::CostModel::calibrated(alpha, beta, t_op)` expects, so a
//! calibrated model reflects *this machine's* shared-memory transport
//! rather than the SuperMUC-NG interconnect preset.
//!
//! Emits one JSON object on stdout:
//!
//! ```json
//! {"probe":"pingpong","transport":"threads","rounds":..,
//!  "points":[{"words":1,"seconds_per_msg":..},..],
//!  "alpha_seconds":..,"beta_seconds_per_word":..}
//! ```

use std::time::Instant;

use tricount_net::{endpoints, Msg, TransportKind};

/// Payload sizes swept (machine words). Spans latency-dominated to
/// bandwidth-dominated messages.
const SIZES: [usize; 6] = [1, 8, 64, 512, 4096, 32768];

/// Ping-pong rounds per payload size (per timed repetition).
const ROUNDS: usize = 200;

/// Timed repetitions per size; the minimum is kept (noise rejection).
const REPS: usize = 5;

fn time_size(words: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let eps = endpoints(TransportKind::Threads, 2);
        let elapsed = std::thread::scope(|scope| {
            let mut it = eps.into_iter();
            let mut a = match it.next() {
                Some(ep) => ep,
                None => return f64::INFINITY,
            };
            let mut b = match it.next() {
                Some(ep) => ep,
                None => return f64::INFINITY,
            };
            let pinger = scope.spawn(move || {
                a.barrier();
                let start = Instant::now();
                for seq in 0..ROUNDS as u64 {
                    a.send(
                        1,
                        Msg {
                            src: 0,
                            seq,
                            words: vec![seq; words],
                            arrival: 0.0,
                        },
                    );
                    loop {
                        if a.try_recv().is_some() {
                            break;
                        }
                        std::hint::spin_loop();
                    }
                }
                start.elapsed().as_secs_f64()
            });
            scope.spawn(move || {
                b.barrier();
                for _ in 0..ROUNDS {
                    loop {
                        if let Some(m) = b.try_recv() {
                            b.send(0, m);
                            break;
                        }
                        std::hint::spin_loop();
                    }
                }
            });
            pinger.join().unwrap_or(f64::INFINITY)
        });
        // one round = two messages, so per-message time is elapsed / (2·rounds)
        best = best.min(elapsed / (2.0 * ROUNDS as f64));
    }
    best
}

/// Ordinary least squares for `t = alpha + beta * words`.
fn fit(points: &[(usize, f64)]) -> (f64, f64) {
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|(w, _)| *w as f64).sum();
    let sy: f64 = points.iter().map(|(_, t)| *t).sum();
    let sxx: f64 = points.iter().map(|(w, _)| (*w as f64) * (*w as f64)).sum();
    let sxy: f64 = points.iter().map(|(w, t)| (*w as f64) * t).sum();
    let denom = n * sxx - sx * sx;
    if denom == 0.0 {
        return (sy / n, 0.0);
    }
    let beta = (n * sxy - sx * sy) / denom;
    let alpha = (sy - beta * sx) / n;
    // a noisy small-message sweep can fit a (meaningless) negative
    // intercept; clamp at zero rather than report negative latency
    (alpha.max(0.0), beta.max(0.0))
}

fn main() {
    let points: Vec<(usize, f64)> = SIZES.iter().map(|&w| (w, time_size(w))).collect();
    let (alpha, beta) = fit(&points);
    let mut json = String::from("{\"probe\":\"pingpong\",\"transport\":\"threads\"");
    json.push_str(&format!(",\"rounds\":{}", ROUNDS * REPS));
    json.push_str(",\"points\":[");
    for (i, (w, t)) in points.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!("{{\"words\":{w},\"seconds_per_msg\":{t:.3e}}}"));
    }
    json.push_str(&format!(
        "],\"alpha_seconds\":{alpha:.3e},\"beta_seconds_per_word\":{beta:.3e}}}"
    ));
    println!("{json}");
}

//! Allgather collective probe over the threads transport.
//!
//! Sweeps PE counts and per-rank payload sizes through the transport's
//! `exchange` rendezvous and reports seconds per collective call. The
//! α·⌈log₂ p⌉ term the cost model charges for collectives can be checked
//! against the measured p-scaling here; together with the ping-pong probe
//! this yields a fully machine-calibrated `CostModel::calibrated`.
//!
//! Emits one JSON object on stdout:
//!
//! ```json
//! {"probe":"allgather","transport":"threads",
//!  "points":[{"p":4,"words_per_rank":64,"seconds_per_call":..},..],
//!  "alpha_log_seconds":..}
//! ```

use std::time::Instant;

use tricount_net::{endpoints, TransportKind};

/// PE counts swept (capped by available parallelism below).
const PES: [usize; 4] = [2, 4, 8, 16];

/// Per-rank payload sizes swept (machine words).
const SIZES: [usize; 3] = [1, 64, 4096];

/// Collective calls per timed repetition.
const CALLS: usize = 100;

/// Timed repetitions; the minimum is kept.
const REPS: usize = 3;

fn time_allgather(p: usize, words: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let eps = endpoints(TransportKind::Threads, p);
        let elapsed = std::thread::scope(|scope| {
            let handles: Vec<_> = eps
                .into_iter()
                .enumerate()
                .map(|(rank, mut ep)| {
                    scope.spawn(move || {
                        ep.barrier();
                        let start = Instant::now();
                        for round in 0..CALLS as u64 {
                            let gathered = ep.exchange(vec![rank as u64 + round; words]);
                            debug_assert_eq!(gathered.len(), p);
                        }
                        start.elapsed().as_secs_f64()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or(f64::INFINITY))
                .fold(0.0f64, f64::max)
        });
        best = best.min(elapsed / CALLS as f64);
    }
    best
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(2, usize::from);
    let mut points: Vec<(usize, usize, f64)> = Vec::new();
    for &p in &PES {
        // oversubscribing a spin barrier past 2× the core count measures
        // scheduler noise, not the transport
        if p > cores * 2 {
            continue;
        }
        for &w in &SIZES {
            points.push((p, w, time_allgather(p, w)));
        }
    }
    // slope of the 1-word column against ⌈log₂ p⌉: the measured analogue of
    // the model's per-collective α·⌈log₂ p⌉ charge
    let small: Vec<(usize, f64)> = points
        .iter()
        .filter(|(_, w, _)| *w == SIZES[0])
        .map(|(p, _, t)| (usize::BITS as usize - (p - 1).leading_zeros() as usize, *t))
        .collect();
    let alpha_log = if small.len() >= 2 {
        let n = small.len() as f64;
        let sx: f64 = small.iter().map(|(x, _)| *x as f64).sum();
        let sy: f64 = small.iter().map(|(_, y)| *y).sum();
        let sxx: f64 = small.iter().map(|(x, _)| (*x as f64) * (*x as f64)).sum();
        let sxy: f64 = small.iter().map(|(x, y)| (*x as f64) * y).sum();
        let denom = n * sxx - sx * sx;
        if denom == 0.0 {
            0.0
        } else {
            ((n * sxy - sx * sy) / denom).max(0.0)
        }
    } else {
        0.0
    };
    let mut json = String::from("{\"probe\":\"allgather\",\"transport\":\"threads\",\"points\":[");
    for (i, (p, w, t)) in points.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"p\":{p},\"words_per_rank\":{w},\"seconds_per_call\":{t:.3e}}}"
        ));
    }
    json.push_str(&format!("],\"alpha_log_seconds\":{alpha_log:.3e}}}"));
    println!("{json}");
}

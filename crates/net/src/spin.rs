//! A sense-reversing spin barrier with panic poisoning.
//!
//! The threads backend cannot use [`std::sync::Barrier`]: a PE that panics
//! while its siblings wait would leave them parked forever (the simulator
//! tolerates this because its harnesses run under the deadlock watchdog;
//! a *real* parallel run must fail fast instead). This barrier spins on an
//! atomic generation counter — checking a shared poison flag every
//! iteration — so a peer panic propagates as a panic in every waiter
//! within microseconds, letting the scoped runtime join all threads and
//! re-raise the original payload.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Spin iterations between `yield_now` calls while waiting: stay hot for
/// short waits, stay polite when oversubscribed (more PE threads than
/// cores — p = 16 fixtures on a 4-core runner must not livelock).
const SPINS_PER_YIELD: u32 = 64;

/// A reusable sense-reversing barrier for a fixed party count, with a
/// poison flag that turns sibling panics into immediate local panics.
pub struct SpinBarrier {
    parties: usize,
    arrived: AtomicUsize,
    generation: AtomicUsize,
    poisoned: AtomicBool,
}

impl SpinBarrier {
    /// A barrier for `parties` threads.
    pub fn new(parties: usize) -> SpinBarrier {
        SpinBarrier {
            parties,
            arrived: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            poisoned: AtomicBool::new(false),
        }
    }

    /// Marks the barrier poisoned: every current and future waiter panics.
    /// Called from the transport's unwind detection (endpoint `Drop` during
    /// a panic).
    pub fn poison(&self) {
        self.poisoned.store(true, Ordering::SeqCst);
    }

    /// Whether a peer has poisoned the barrier.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::SeqCst)
    }

    /// Panics if the barrier is poisoned (peer PE panicked).
    #[inline]
    pub fn check_poison(&self) {
        assert!(
            !self.is_poisoned(),
            "transport poisoned: a peer PE panicked"
        );
    }

    /// Waits until all `parties` threads arrive. Panics if a peer poisons
    /// the barrier while waiting.
    pub fn wait(&self) {
        self.check_poison();
        let gen = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.parties {
            // last arrival: reset the count, then release the generation
            self.arrived.store(0, Ordering::Release);
            self.generation.fetch_add(1, Ordering::AcqRel);
            return;
        }
        let mut spins = 0u32;
        while self.generation.load(Ordering::Acquire) == gen {
            self.check_poison();
            spins += 1;
            if spins % SPINS_PER_YIELD == 0 {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn synchronises_many_rounds() {
        let parties = 4;
        let rounds = 200;
        let barrier = Arc::new(SpinBarrier::new(parties));
        let counter = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            for _ in 0..parties {
                let barrier = Arc::clone(&barrier);
                let counter = Arc::clone(&counter);
                scope.spawn(move || {
                    for round in 0..rounds {
                        counter.fetch_add(1, Ordering::SeqCst);
                        barrier.wait();
                        // between the two barriers every party observes the
                        // full increment of the round
                        let seen = counter.load(Ordering::SeqCst);
                        assert_eq!(seen, (round + 1) * parties as u64);
                        barrier.wait();
                    }
                });
            }
        });
    }

    #[test]
    fn poison_releases_waiters_as_panics() {
        let barrier = Arc::new(SpinBarrier::new(2));
        let waiter = Arc::clone(&barrier);
        let handle = std::thread::spawn(move || waiter.wait());
        barrier.poison();
        assert!(handle.join().is_err(), "waiter must panic, not hang");
    }

    #[test]
    fn single_party_is_free() {
        let b = SpinBarrier::new(1);
        for _ in 0..10 {
            b.wait();
        }
    }
}

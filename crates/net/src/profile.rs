//! Wall-clock profiling of the threads backend: per-PE event rings and
//! contention meters.
//!
//! The modeled meters of `tricount-comm` are deliberately blind to wall
//! time — they are bit-compared across backends and schedules. This module
//! is the complementary instrument: when a threads-backend run is built
//! through [`crate::threads::ThreadsTransport::endpoints_profiled`], every
//! endpoint carries a fixed-capacity [`ProbeRing`] recording sends,
//! receives and barrier enter/exit with nanosecond wall stamps, plus a set
//! of [`ContentionMeters`] (queue lock-wait, occupancy high-water, barrier
//! spin). Everything is thread-local to the owning PE — recording is a
//! bounds check and a `Vec::push`, never a lock — and the logs are drained
//! *after* the run, when the rank threads have been joined.
//!
//! Overflow discipline: a full ring counts the drop and moves on. The
//! profiler must never stall or reorder the data plane it observes; the
//! non-perturbation tests in `tricount-verify` hold the modeled counters of
//! profiled runs bit-equal to unprofiled ones.

use std::sync::{Arc, Mutex, PoisonError};

/// Default per-PE ring capacity (events), used when the caller passes 0.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

/// What happened, from the recording PE's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WallEventKind {
    /// This PE pushed a message onto the queue towards `to`.
    Send {
        /// Destination rank.
        to: usize,
        /// Per-`(src, dst)` sequence number of the message.
        seq: u64,
        /// Payload length in machine words.
        words: u64,
    },
    /// This PE popped a message that `from` had pushed.
    Recv {
        /// Source rank.
        from: usize,
        /// Per-`(src, dst)` sequence number of the message.
        seq: u64,
        /// Payload length in machine words.
        words: u64,
    },
    /// This PE arrived at the spin barrier.
    BarrierEnter,
    /// The spin barrier released this PE.
    BarrierExit,
}

/// One recorded event: what happened and when (nanoseconds since the
/// transport's epoch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WallEvent {
    /// The event.
    pub kind: WallEventKind,
    /// Wall nanoseconds since the data plane was built.
    pub t_nanos: u64,
}

/// A fixed-capacity event log. Overflow is a counted drop, never a stall:
/// the ring exists to observe the transport, not to throttle it.
#[derive(Debug)]
pub struct ProbeRing {
    events: Vec<WallEvent>,
    capacity: usize,
    dropped: u64,
}

impl ProbeRing {
    /// A ring holding at most `capacity` events (0 selects
    /// [`DEFAULT_RING_CAPACITY`]).
    pub fn new(capacity: usize) -> ProbeRing {
        let capacity = if capacity == 0 {
            DEFAULT_RING_CAPACITY
        } else {
            capacity
        };
        ProbeRing {
            events: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Records an event, or counts a drop when full.
    #[inline]
    pub fn record(&mut self, kind: WallEventKind, t_nanos: u64) {
        if self.events.len() < self.capacity {
            self.events.push(WallEvent { kind, t_nanos });
        } else {
            self.dropped += 1;
        }
    }

    /// Events recorded so far.
    pub fn events(&self) -> &[WallEvent] {
        &self.events
    }

    /// Events that did not fit.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Consumes the ring into its recorded events and drop count.
    pub fn into_events(self) -> (Vec<WallEvent>, u64) {
        (self.events, self.dropped)
    }
}

/// Per-PE contention meters, fixed-size regardless of traffic volume (they
/// survive ring overflow untouched).
#[derive(Debug, Clone)]
pub struct ContentionMeters {
    /// Nanoseconds spent acquiring the outgoing queue lock, per destination.
    pub send_lock_wait_nanos: Vec<u64>,
    /// Nanoseconds spent acquiring the incoming queue lock, per source.
    pub recv_lock_wait_nanos: Vec<u64>,
    /// High-water occupancy (messages) of each outgoing queue, per
    /// destination, observed at push time.
    pub occupancy_highwater: Vec<u64>,
    /// Nanoseconds spent inside the spin barrier.
    pub barrier_spin_nanos: u64,
    /// Barrier waits performed.
    pub barrier_waits: u64,
}

impl ContentionMeters {
    /// Zeroed meters for a `p`-PE run.
    pub fn new(p: usize) -> ContentionMeters {
        ContentionMeters {
            send_lock_wait_nanos: vec![0; p],
            recv_lock_wait_nanos: vec![0; p],
            occupancy_highwater: vec![0; p],
            barrier_spin_nanos: 0,
            barrier_waits: 0,
        }
    }
}

/// One PE's complete wall-clock log, deposited when its endpoint drops.
#[derive(Debug)]
pub struct PeWallLog {
    /// The owning rank.
    pub rank: usize,
    /// Recorded events in program order.
    pub events: Vec<WallEvent>,
    /// Events the ring could not hold.
    pub dropped: u64,
    /// The PE's contention meters.
    pub meters: ContentionMeters,
}

/// Post-run deposit area: one slot per rank, filled by each endpoint's
/// `Drop`. The runtime joins every rank thread before draining, so a full
/// run always yields `p` logs.
#[derive(Debug)]
pub struct WallCollector {
    slots: Vec<Mutex<Option<PeWallLog>>>,
    ring_capacity: usize,
}

impl WallCollector {
    /// A collector for a `p`-PE run (capacity 0 selects the default).
    pub fn new(p: usize, ring_capacity: usize) -> WallCollector {
        let ring_capacity = if ring_capacity == 0 {
            DEFAULT_RING_CAPACITY
        } else {
            ring_capacity
        };
        WallCollector {
            slots: (0..p).map(|_| Mutex::new(None)).collect(),
            ring_capacity,
        }
    }

    /// The per-PE ring capacity this run profiles with.
    pub fn ring_capacity(&self) -> usize {
        self.ring_capacity
    }

    /// Deposits one PE's log (called from the endpoint's `Drop`).
    pub fn deposit(&self, log: PeWallLog) {
        let rank = log.rank;
        *self.slots[rank]
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = Some(log);
    }

    /// Drains the deposited logs into a [`WallProfile`]. Ranks that never
    /// deposited (a panicked run) come back as empty logs, so the profile
    /// is always structurally complete.
    pub fn drain(self: Arc<Self>) -> WallProfile {
        let p = self.slots.len();
        let ring_capacity = self.ring_capacity;
        let per_pe: Vec<PeWallLog> = self
            .slots
            .iter()
            .enumerate()
            .map(|(rank, slot)| {
                slot.lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .take()
                    .unwrap_or(PeWallLog {
                        rank,
                        events: Vec::new(),
                        dropped: 0,
                        meters: ContentionMeters::new(p),
                    })
            })
            .collect();
        WallProfile {
            p,
            ring_capacity,
            per_pe,
        }
    }
}

/// The drained wall-clock record of one profiled threads run.
#[derive(Debug)]
pub struct WallProfile {
    /// Number of PEs.
    pub p: usize,
    /// Per-PE ring capacity the run recorded under.
    pub ring_capacity: usize,
    /// One log per rank, indexed by rank.
    pub per_pe: Vec<PeWallLog>,
}

impl WallProfile {
    /// Events recorded over all PEs.
    pub fn events_recorded(&self) -> u64 {
        self.per_pe.iter().map(|l| l.events.len() as u64).sum()
    }

    /// Events dropped over all PEs (ring overflow).
    pub fn events_dropped(&self) -> u64 {
        self.per_pe.iter().map(|l| l.dropped).sum()
    }

    /// Folds the per-PE meters into the compact [`ContentionSummary`] that
    /// rides on `RunStats`.
    pub fn contention(&self) -> ContentionSummary {
        let p = self.p;
        let mut s = ContentionSummary {
            p,
            send_lock_wait_nanos: vec![0; p],
            recv_lock_wait_nanos: vec![0; p],
            occupancy_highwater: vec![0; p],
            barrier_spin_nanos: vec![0; p],
            barrier_waits: vec![0; p],
            pair_lock_wait_nanos: vec![vec![0; p]; p],
            events_recorded: self.events_recorded(),
            events_dropped: self.events_dropped(),
        };
        for log in &self.per_pe {
            let r = log.rank;
            s.send_lock_wait_nanos[r] = log.meters.send_lock_wait_nanos.iter().sum();
            s.recv_lock_wait_nanos[r] = log.meters.recv_lock_wait_nanos.iter().sum();
            s.occupancy_highwater[r] = log
                .meters
                .occupancy_highwater
                .iter()
                .copied()
                .max()
                .unwrap_or(0);
            s.barrier_spin_nanos[r] = log.meters.barrier_spin_nanos;
            s.barrier_waits[r] = log.meters.barrier_waits;
            for (dst, &w) in log.meters.send_lock_wait_nanos.iter().enumerate() {
                s.pair_lock_wait_nanos[r][dst] = w;
            }
        }
        s
    }
}

/// Contention summary of one profiled run, carried on
/// `tricount_comm::RunStats` and rendered into Prometheus. All quantities
/// are *measured* wall properties of the host — deliberately outside the
/// modeled `Counters`, which stay bit-identical whether or not this record
/// exists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContentionSummary {
    /// Number of PEs.
    pub p: usize,
    /// Per-PE send-side queue lock-wait nanoseconds (summed over peers).
    pub send_lock_wait_nanos: Vec<u64>,
    /// Per-PE receive-side queue lock-wait nanoseconds (summed over peers).
    pub recv_lock_wait_nanos: Vec<u64>,
    /// Per-PE high-water occupancy over that PE's outgoing queues.
    pub occupancy_highwater: Vec<u64>,
    /// Per-PE nanoseconds spent spinning in barriers.
    pub barrier_spin_nanos: Vec<u64>,
    /// Per-PE barrier waits.
    pub barrier_waits: Vec<u64>,
    /// Send-side lock-wait nanoseconds per ordered pair:
    /// `pair_lock_wait_nanos[src][dst]`.
    pub pair_lock_wait_nanos: Vec<Vec<u64>>,
    /// Events recorded over all rings.
    pub events_recorded: u64,
    /// Events dropped over all rings (overflow).
    pub events_dropped: u64,
}

impl ContentionSummary {
    /// Total queue lock-wait seconds over all PEs, both directions.
    pub fn lock_wait_seconds(&self) -> f64 {
        let nanos: u64 = self.send_lock_wait_nanos.iter().sum::<u64>()
            + self.recv_lock_wait_nanos.iter().sum::<u64>();
        nanos as f64 / 1e9
    }

    /// Total barrier spin seconds over all PEs.
    pub fn barrier_spin_seconds(&self) -> f64 {
        self.barrier_spin_nanos.iter().sum::<u64>() as f64 / 1e9
    }

    /// Largest outgoing-queue occupancy observed on any PE.
    pub fn max_occupancy(&self) -> u64 {
        self.occupancy_highwater.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_overflow_counts_drops() {
        let mut ring = ProbeRing::new(2);
        for i in 0..5 {
            ring.record(WallEventKind::BarrierEnter, i);
        }
        assert_eq!(ring.events().len(), 2);
        assert_eq!(ring.dropped(), 3);
    }

    #[test]
    fn zero_capacity_selects_default() {
        let ring = ProbeRing::new(0);
        assert_eq!(ring.capacity, DEFAULT_RING_CAPACITY);
        let coll = WallCollector::new(2, 0);
        assert_eq!(coll.ring_capacity(), DEFAULT_RING_CAPACITY);
    }

    #[test]
    fn collector_drains_missing_ranks_as_empty() {
        let coll = Arc::new(WallCollector::new(3, 8));
        coll.deposit(PeWallLog {
            rank: 1,
            events: vec![WallEvent {
                kind: WallEventKind::BarrierEnter,
                t_nanos: 5,
            }],
            dropped: 2,
            meters: ContentionMeters::new(3),
        });
        let profile = coll.drain();
        assert_eq!(profile.p, 3);
        assert_eq!(profile.per_pe.len(), 3);
        assert_eq!(profile.per_pe[1].events.len(), 1);
        assert_eq!(profile.events_dropped(), 2);
        assert!(profile.per_pe[0].events.is_empty());
    }

    #[test]
    fn contention_summary_folds_meters() {
        let mut log0 = PeWallLog {
            rank: 0,
            events: Vec::new(),
            dropped: 1,
            meters: ContentionMeters::new(2),
        };
        log0.meters.send_lock_wait_nanos[1] = 100;
        log0.meters.recv_lock_wait_nanos[1] = 50;
        log0.meters.occupancy_highwater[1] = 7;
        log0.meters.barrier_spin_nanos = 1_000;
        log0.meters.barrier_waits = 3;
        let profile = WallProfile {
            p: 2,
            ring_capacity: 8,
            per_pe: vec![
                log0,
                PeWallLog {
                    rank: 1,
                    events: Vec::new(),
                    dropped: 0,
                    meters: ContentionMeters::new(2),
                },
            ],
        };
        let s = profile.contention();
        assert_eq!(s.send_lock_wait_nanos, vec![100, 0]);
        assert_eq!(s.pair_lock_wait_nanos[0][1], 100);
        assert_eq!(s.occupancy_highwater, vec![7, 0]);
        assert_eq!(s.barrier_waits, vec![3, 0]);
        assert_eq!(s.events_dropped, 1);
        assert!((s.lock_wait_seconds() - 150e-9).abs() < 1e-15);
        assert!((s.barrier_spin_seconds() - 1e-6).abs() < 1e-12);
        assert_eq!(s.max_occupancy(), 7);
    }
}

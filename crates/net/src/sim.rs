//! The simulator data plane, extracted verbatim from the pre-transport
//! runtime: unbounded `std::sync::mpsc` channels (one inbox per PE, all
//! senders feeding it in real arrival order), a blocking
//! [`std::sync::Barrier`], and a mutex-guarded scratch area for the
//! shared-memory collectives.
//!
//! This backend is the determinism/verify/mc substrate: its delivery
//! semantics (single merged inbox, FIFO in arrival order) are what the
//! perturbation and `DeliveryPick` hooks in `tricount-comm` re-order, and
//! its blocking barrier is what the deadlock watchdog observes. It must
//! stay behaviourally identical to the historical runtime — the
//! cross-backend equivalence suite in `tricount-verify` pins the threads
//! backend against it.

use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Barrier, Mutex, PoisonError};

use crate::{Endpoint, Msg, TransportKind};

/// Scratch space for shared-memory collectives.
struct CollScratch {
    /// Per-rank deposit slot (allgather/allreduce).
    slots: Vec<Vec<u64>>,
    /// `mat[src][dst]` deposit matrix (all-to-all).
    mat: Vec<Vec<Vec<u64>>>,
}

/// State shared by all endpoints of one sim-backend run.
struct SimShared {
    senders: Vec<Sender<Msg>>,
    barrier: Barrier,
    coll: Mutex<CollScratch>,
}

/// The simulator transport: builds [`SimEndpoint`]s sharing one channel
/// mesh, barrier and collective scratch.
pub struct SimTransport;

impl SimTransport {
    /// One endpoint per rank over a fresh data plane.
    pub fn endpoints(p: usize) -> Vec<Box<dyn Endpoint>> {
        let mut senders = Vec::with_capacity(p);
        let mut receivers = Vec::with_capacity(p);
        for _ in 0..p {
            let (s, r) = std::sync::mpsc::channel();
            senders.push(s);
            receivers.push(r);
        }
        let shared = Arc::new(SimShared {
            senders,
            barrier: Barrier::new(p),
            coll: Mutex::new(CollScratch {
                slots: vec![Vec::new(); p],
                mat: vec![Vec::new(); p],
            }),
        });
        receivers
            .into_iter()
            .enumerate()
            .map(|(rank, receiver)| {
                Box::new(SimEndpoint {
                    rank,
                    p,
                    shared: Arc::clone(&shared),
                    receiver,
                }) as Box<dyn Endpoint>
            })
            .collect()
    }
}

/// One PE's handle on the simulator data plane.
pub struct SimEndpoint {
    rank: usize,
    p: usize,
    shared: Arc<SimShared>,
    receiver: Receiver<Msg>,
}

impl Endpoint for SimEndpoint {
    fn kind(&self) -> TransportKind {
        TransportKind::Sim
    }

    fn rank(&self) -> usize {
        self.rank
    }

    fn peers(&self) -> usize {
        self.p
    }

    fn send(&mut self, to: usize, msg: Msg) {
        // A closed inbox means the destination thread is gone — that only
        // happens when a guarded run has been abandoned and its leaked
        // threads are winding down; the message is moot, not a panic.
        let _ = self.shared.senders[to].send(msg);
    }

    fn try_recv(&mut self) -> Option<Msg> {
        self.receiver.try_recv().ok()
    }

    fn barrier(&self) {
        self.shared.barrier.wait();
    }

    fn exchange(&mut self, data: Vec<u64>) -> Vec<Vec<u64>> {
        {
            let mut s = self
                .shared
                .coll
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            s.slots[self.rank] = data;
        }
        self.barrier();
        let out: Vec<Vec<u64>> = {
            let s = self
                .shared
                .coll
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            s.slots.clone()
        };
        self.barrier();
        out
    }

    fn exchange_matrix(&mut self, rows: Vec<Vec<u64>>) -> Vec<Vec<u64>> {
        {
            let mut s = self
                .shared
                .coll
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            s.mat[self.rank] = rows;
        }
        self.barrier();
        let incoming: Vec<Vec<u64>> = {
            let s = self
                .shared
                .coll
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            (0..self.p)
                .map(|src| s.mat[src][self.rank].clone())
                .collect()
        };
        self.barrier();
        incoming
    }
}

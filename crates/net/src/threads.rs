//! The real parallel backend: thread-per-PE over shared memory.
//!
//! Point-to-point traffic flows through one SPSC queue per ordered PE pair
//! — a single producer (the sending rank) and a single consumer (the
//! receiving rank) per queue, never more. Each queue pairs a `VecDeque`
//! behind a mutex with an **atomic occupancy counter**: the receive poll
//! loop reads the counter and touches no lock until a message is actually
//! present, so an idle poll across `p − 1` sources is lock-free. (A
//! classic index-ring SPSC would drop the remaining per-message lock, but
//! needs `UnsafeCell` slots and this workspace forbids `unsafe`; with one
//! producer and one consumer the O(1) critical sections here are
//! contended only during the actual hand-off.)
//!
//! Barriers are the sense-reversing spin barrier of [`crate::spin`];
//! collectives deposit into per-rank mutex cells bracketed by barriers —
//! the same deposit → barrier → collect → barrier rendezvous as the sim
//! backend, with per-slot locks instead of one global scratch lock.
//!
//! **Panic poisoning**: when a rank thread unwinds, its endpoint's `Drop`
//! poisons the shared barrier. Every sibling blocked in a barrier — and
//! every subsequent `try_recv`/`send` — panics immediately instead of
//! spinning on a peer that will never arrive, so the scoped runtime can
//! join all PEs and re-raise the first panic. No leaked threads.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use crate::spin::SpinBarrier;
use crate::{Endpoint, Msg, TransportKind};

/// One directed SPSC channel: `src → dst`.
struct PairQueue {
    /// Messages in flight, FIFO.
    q: Mutex<VecDeque<Msg>>,
    /// Occupancy hint: incremented after push, decremented after pop. The
    /// consumer skips the lock entirely while this reads 0.
    len: AtomicUsize,
}

impl PairQueue {
    fn new() -> PairQueue {
        PairQueue {
            q: Mutex::new(VecDeque::new()),
            len: AtomicUsize::new(0),
        }
    }

    fn push(&self, msg: Msg) {
        self.q
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push_back(msg);
        self.len.fetch_add(1, Ordering::Release);
    }

    fn pop(&self) -> Option<Msg> {
        if self.len.load(Ordering::Acquire) == 0 {
            return None;
        }
        let msg = self
            .q
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop_front();
        if msg.is_some() {
            self.len.fetch_sub(1, Ordering::Release);
        }
        msg
    }
}

/// State shared by all endpoints of one threads-backend run.
struct ThreadsShared {
    p: usize,
    /// `chan[src * p + dst]` — the SPSC queue from `src` to `dst`.
    chan: Vec<PairQueue>,
    barrier: SpinBarrier,
    /// Collective deposit slots (allgather rendezvous), one per rank.
    slots: Vec<Mutex<Vec<u64>>>,
    /// All-to-all deposit rows, `mat[src]` holding what `src` sends.
    mat: Vec<Mutex<Vec<Vec<u64>>>>,
}

/// The thread-per-PE transport: builds [`ThreadsEndpoint`]s over one
/// shared-memory mesh.
pub struct ThreadsTransport;

impl ThreadsTransport {
    /// One endpoint per rank over a fresh data plane.
    pub fn endpoints(p: usize) -> Vec<Box<dyn Endpoint>> {
        let shared = Arc::new(ThreadsShared {
            p,
            chan: (0..p * p).map(|_| PairQueue::new()).collect(),
            barrier: SpinBarrier::new(p),
            slots: (0..p).map(|_| Mutex::new(Vec::new())).collect(),
            mat: (0..p).map(|_| Mutex::new(Vec::new())).collect(),
        });
        (0..p)
            .map(|rank| {
                Box::new(ThreadsEndpoint {
                    rank,
                    shared: Arc::clone(&shared),
                    cursor: 0,
                }) as Box<dyn Endpoint>
            })
            .collect()
    }
}

/// One PE's handle on the threads data plane.
pub struct ThreadsEndpoint {
    rank: usize,
    shared: Arc<ThreadsShared>,
    /// Round-robin receive cursor over source ranks, for fairness under
    /// sustained traffic from multiple peers.
    cursor: usize,
}

impl Drop for ThreadsEndpoint {
    fn drop(&mut self) {
        // An endpoint dropped mid-unwind means its PE died with the
        // protocol incomplete: poison the transport so siblings fail fast
        // instead of spinning on a peer that will never arrive.
        if std::thread::panicking() {
            self.shared.barrier.poison();
        }
    }
}

impl Endpoint for ThreadsEndpoint {
    fn kind(&self) -> TransportKind {
        TransportKind::Threads
    }

    fn rank(&self) -> usize {
        self.rank
    }

    fn peers(&self) -> usize {
        self.shared.p
    }

    fn send(&mut self, to: usize, msg: Msg) {
        self.shared.barrier.check_poison();
        self.shared.chan[self.rank * self.shared.p + to].push(msg);
    }

    fn try_recv(&mut self) -> Option<Msg> {
        self.shared.barrier.check_poison();
        let p = self.shared.p;
        for i in 0..p {
            let src = (self.cursor + i) % p;
            if src == self.rank {
                continue;
            }
            if let Some(msg) = self.shared.chan[src * p + self.rank].pop() {
                // resume the scan *after* the source that just delivered
                self.cursor = (src + 1) % p;
                return Some(msg);
            }
        }
        None
    }

    fn barrier(&self) {
        self.shared.barrier.wait();
    }

    fn exchange(&mut self, data: Vec<u64>) -> Vec<Vec<u64>> {
        *self.shared.slots[self.rank]
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = data;
        self.barrier();
        let out: Vec<Vec<u64>> = self
            .shared
            .slots
            .iter()
            .map(|slot| slot.lock().unwrap_or_else(PoisonError::into_inner).clone())
            .collect();
        self.barrier();
        out
    }

    fn exchange_matrix(&mut self, rows: Vec<Vec<u64>>) -> Vec<Vec<u64>> {
        *self.shared.mat[self.rank]
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = rows;
        self.barrier();
        let incoming: Vec<Vec<u64>> = (0..self.shared.p)
            .map(|src| {
                let row = self.shared.mat[src]
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                row.get(self.rank).cloned().unwrap_or_default()
            })
            .collect();
        self.barrier();
        incoming
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_queue_is_fifo_under_load() {
        let q = Arc::new(PairQueue::new());
        let producer = Arc::clone(&q);
        std::thread::scope(|scope| {
            scope.spawn(move || {
                for i in 0..10_000u64 {
                    producer.push(Msg {
                        src: 0,
                        seq: i,
                        words: vec![i],
                        arrival: 0.0,
                    });
                }
            });
            let mut expect = 0u64;
            while expect < 10_000 {
                if let Some(m) = q.pop() {
                    assert_eq!(m.seq, expect);
                    expect += 1;
                } else {
                    std::hint::spin_loop();
                }
            }
        });
    }

    #[test]
    fn peer_panic_poisons_the_transport() {
        let eps = ThreadsTransport::endpoints(3);
        // endpoints are consumed whole by the rank threads; unwind safety
        // is the very property under test
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            std::thread::scope(|scope| {
                for (rank, ep) in eps.into_iter().enumerate() {
                    scope.spawn(move || {
                        // bind the endpoint in the panicking thread so its
                        // Drop runs during the unwind
                        let ep = ep;
                        if rank == 1 {
                            panic!("rank 1 dies");
                        }
                        // siblings head into a barrier rank 1 never reaches
                        ep.barrier();
                    });
                }
            })
        }));
        assert!(outcome.is_err(), "scope must re-raise, not hang");
    }
}

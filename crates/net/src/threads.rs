//! The real parallel backend: thread-per-PE over shared memory.
//!
//! Point-to-point traffic flows through one SPSC queue per ordered PE pair
//! — a single producer (the sending rank) and a single consumer (the
//! receiving rank) per queue, never more. Each queue pairs a `VecDeque`
//! behind a mutex with an **atomic occupancy counter**: the receive poll
//! loop reads the counter and touches no lock until a message is actually
//! present, so an idle poll across `p − 1` sources is lock-free. (A
//! classic index-ring SPSC would drop the remaining per-message lock, but
//! needs `UnsafeCell` slots and this workspace forbids `unsafe`; with one
//! producer and one consumer the O(1) critical sections here are
//! contended only during the actual hand-off.)
//!
//! Barriers are the sense-reversing spin barrier of [`crate::spin`];
//! collectives deposit into per-rank mutex cells bracketed by barriers —
//! the same deposit → barrier → collect → barrier rendezvous as the sim
//! backend, with per-slot locks instead of one global scratch lock.
//!
//! **Panic poisoning**: when a rank thread unwinds, its endpoint's `Drop`
//! poisons the shared barrier. Every sibling blocked in a barrier — and
//! every subsequent `try_recv`/`send` — panics immediately instead of
//! spinning on a peer that will never arrive, so the scoped runtime can
//! join all PEs and re-raise the first panic. No leaked threads.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

use crate::profile::{ContentionMeters, PeWallLog, ProbeRing, WallCollector, WallEventKind};
use crate::spin::SpinBarrier;
use crate::{Endpoint, Msg, TransportKind};

/// One directed SPSC channel: `src → dst`.
struct PairQueue {
    /// Messages in flight, FIFO.
    q: Mutex<VecDeque<Msg>>,
    /// Occupancy hint: incremented after push, decremented after pop. The
    /// consumer skips the lock entirely while this reads 0.
    len: AtomicUsize,
}

impl PairQueue {
    fn new() -> PairQueue {
        PairQueue {
            q: Mutex::new(VecDeque::new()),
            len: AtomicUsize::new(0),
        }
    }

    fn push(&self, msg: Msg) {
        self.q
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push_back(msg);
        self.len.fetch_add(1, Ordering::Release);
    }

    fn pop(&self) -> Option<Msg> {
        if self.len.load(Ordering::Acquire) == 0 {
            return None;
        }
        let msg = self
            .q
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop_front();
        if msg.is_some() {
            self.len.fetch_sub(1, Ordering::Release);
        }
        msg
    }

    /// [`PairQueue::push`] plus contention metering: returns the
    /// nanoseconds spent acquiring the lock and the queue depth right
    /// after the push (for occupancy high-water tracking). The data-plane
    /// effect is identical to the unprofiled path.
    fn push_timed(&self, msg: Msg) -> (u64, u64) {
        let t0 = Instant::now();
        let mut q = self.q.lock().unwrap_or_else(PoisonError::into_inner);
        let lock_wait = t0.elapsed().as_nanos() as u64;
        q.push_back(msg);
        let depth = q.len() as u64;
        drop(q);
        self.len.fetch_add(1, Ordering::Release);
        (lock_wait, depth)
    }

    /// [`PairQueue::pop`] plus contention metering: additionally returns
    /// the nanoseconds spent acquiring the lock (0 when the occupancy hint
    /// short-circuits the poll). The data-plane effect is identical to the
    /// unprofiled path.
    fn pop_timed(&self) -> (Option<Msg>, u64) {
        if self.len.load(Ordering::Acquire) == 0 {
            return (None, 0);
        }
        let t0 = Instant::now();
        let mut q = self.q.lock().unwrap_or_else(PoisonError::into_inner);
        let lock_wait = t0.elapsed().as_nanos() as u64;
        let msg = q.pop_front();
        drop(q);
        if msg.is_some() {
            self.len.fetch_sub(1, Ordering::Release);
        }
        (msg, lock_wait)
    }
}

/// State shared by all endpoints of one threads-backend run.
struct ThreadsShared {
    p: usize,
    /// `chan[src * p + dst]` — the SPSC queue from `src` to `dst`.
    chan: Vec<PairQueue>,
    barrier: SpinBarrier,
    /// Collective deposit slots (allgather rendezvous), one per rank.
    slots: Vec<Mutex<Vec<u64>>>,
    /// All-to-all deposit rows, `mat[src]` holding what `src` sends.
    mat: Vec<Mutex<Vec<Vec<u64>>>>,
}

/// The thread-per-PE transport: builds [`ThreadsEndpoint`]s over one
/// shared-memory mesh.
pub struct ThreadsTransport;

impl ThreadsTransport {
    /// One endpoint per rank over a fresh data plane.
    pub fn endpoints(p: usize) -> Vec<Box<dyn Endpoint>> {
        Self::build(p, None)
    }

    /// Like [`ThreadsTransport::endpoints`], but every endpoint carries a
    /// wall-clock probe (event ring of `ring_capacity` entries, 0 selects
    /// the default, plus contention meters). When the rank threads have
    /// been joined, [`WallCollector::drain`] yields the run's
    /// [`crate::profile::WallProfile`].
    pub fn endpoints_profiled(
        p: usize,
        ring_capacity: usize,
    ) -> (Vec<Box<dyn Endpoint>>, Arc<WallCollector>) {
        let collector = Arc::new(WallCollector::new(p, ring_capacity));
        let eps = Self::build(p, Some(Arc::clone(&collector)));
        (eps, collector)
    }

    fn build(p: usize, collector: Option<Arc<WallCollector>>) -> Vec<Box<dyn Endpoint>> {
        let shared = Arc::new(ThreadsShared {
            p,
            chan: (0..p * p).map(|_| PairQueue::new()).collect(),
            barrier: SpinBarrier::new(p),
            slots: (0..p).map(|_| Mutex::new(Vec::new())).collect(),
            mat: (0..p).map(|_| Mutex::new(Vec::new())).collect(),
        });
        let epoch = Instant::now();
        (0..p)
            .map(|rank| {
                let probe = collector.as_ref().map(|coll| {
                    RefCell::new(ProbeState {
                        epoch,
                        ring: ProbeRing::new(coll.ring_capacity()),
                        meters: ContentionMeters::new(p),
                        collector: Arc::clone(coll),
                    })
                });
                Box::new(ThreadsEndpoint {
                    rank,
                    shared: Arc::clone(&shared),
                    cursor: 0,
                    probe,
                }) as Box<dyn Endpoint>
            })
            .collect()
    }
}

/// Per-endpoint wall-clock probe: event ring, contention meters, and the
/// collector the log is deposited into when the endpoint drops. Owned by
/// the rank thread; the `RefCell` exists only because the [`Endpoint`]
/// trait's `barrier` takes `&self`.
struct ProbeState {
    epoch: Instant,
    ring: ProbeRing,
    meters: ContentionMeters,
    collector: Arc<WallCollector>,
}

impl ProbeState {
    #[inline]
    fn now_nanos(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }
}

/// One PE's handle on the threads data plane.
pub struct ThreadsEndpoint {
    rank: usize,
    shared: Arc<ThreadsShared>,
    /// Round-robin receive cursor over source ranks, for fairness under
    /// sustained traffic from multiple peers.
    cursor: usize,
    /// Wall-clock probe, present only on profiled runs.
    probe: Option<RefCell<ProbeState>>,
}

impl Drop for ThreadsEndpoint {
    fn drop(&mut self) {
        // An endpoint dropped mid-unwind means its PE died with the
        // protocol incomplete: poison the transport so siblings fail fast
        // instead of spinning on a peer that will never arrive.
        if std::thread::panicking() {
            self.shared.barrier.poison();
        }
        // Deposit the wall log unconditionally (panicking or not): the
        // runtime joins every rank thread before draining the collector.
        if let Some(cell) = self.probe.take() {
            let st = cell.into_inner();
            let (events, dropped) = st.ring.into_events();
            st.collector.deposit(PeWallLog {
                rank: self.rank,
                events,
                dropped,
                meters: st.meters,
            });
        }
    }
}

impl Endpoint for ThreadsEndpoint {
    fn kind(&self) -> TransportKind {
        TransportKind::Threads
    }

    fn rank(&self) -> usize {
        self.rank
    }

    fn peers(&self) -> usize {
        self.shared.p
    }

    fn send(&mut self, to: usize, msg: Msg) {
        self.shared.barrier.check_poison();
        let q = &self.shared.chan[self.rank * self.shared.p + to];
        match &self.probe {
            None => q.push(msg),
            Some(cell) => {
                let (seq, words) = (msg.seq, msg.words.len() as u64);
                let (lock_wait, depth) = q.push_timed(msg);
                let mut st = cell.borrow_mut();
                let t = st.now_nanos();
                st.meters.send_lock_wait_nanos[to] += lock_wait;
                if depth > st.meters.occupancy_highwater[to] {
                    st.meters.occupancy_highwater[to] = depth;
                }
                st.ring.record(WallEventKind::Send { to, seq, words }, t);
            }
        }
    }

    fn try_recv(&mut self) -> Option<Msg> {
        self.shared.barrier.check_poison();
        let p = self.shared.p;
        for i in 0..p {
            let src = (self.cursor + i) % p;
            if src == self.rank {
                continue;
            }
            let q = &self.shared.chan[src * p + self.rank];
            let msg = match &self.probe {
                None => q.pop(),
                Some(cell) => {
                    let (msg, lock_wait) = q.pop_timed();
                    let mut st = cell.borrow_mut();
                    st.meters.recv_lock_wait_nanos[src] += lock_wait;
                    if let Some(m) = &msg {
                        let t = st.now_nanos();
                        st.ring.record(
                            WallEventKind::Recv {
                                from: m.src,
                                seq: m.seq,
                                words: m.words.len() as u64,
                            },
                            t,
                        );
                    }
                    msg
                }
            };
            if let Some(msg) = msg {
                // resume the scan *after* the source that just delivered
                self.cursor = (src + 1) % p;
                return Some(msg);
            }
        }
        None
    }

    fn barrier(&self) {
        match &self.probe {
            None => self.shared.barrier.wait(),
            Some(cell) => {
                // Stamp the enter event and release the borrow *before*
                // spinning: the barrier itself never touches the probe, but
                // holding a RefCell borrow across a blocking wait would be
                // a latent trap.
                let t_enter = {
                    let mut st = cell.borrow_mut();
                    let t = st.now_nanos();
                    st.ring.record(WallEventKind::BarrierEnter, t);
                    t
                };
                self.shared.barrier.wait();
                let mut st = cell.borrow_mut();
                let t_exit = st.now_nanos();
                st.ring.record(WallEventKind::BarrierExit, t_exit);
                st.meters.barrier_spin_nanos += t_exit.saturating_sub(t_enter);
                st.meters.barrier_waits += 1;
            }
        }
    }

    fn exchange(&mut self, data: Vec<u64>) -> Vec<Vec<u64>> {
        *self.shared.slots[self.rank]
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = data;
        self.barrier();
        let out: Vec<Vec<u64>> = self
            .shared
            .slots
            .iter()
            .map(|slot| slot.lock().unwrap_or_else(PoisonError::into_inner).clone())
            .collect();
        self.barrier();
        out
    }

    fn exchange_matrix(&mut self, rows: Vec<Vec<u64>>) -> Vec<Vec<u64>> {
        *self.shared.mat[self.rank]
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = rows;
        self.barrier();
        let incoming: Vec<Vec<u64>> = (0..self.shared.p)
            .map(|src| {
                let row = self.shared.mat[src]
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                row.get(self.rank).cloned().unwrap_or_default()
            })
            .collect();
        self.barrier();
        incoming
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_queue_is_fifo_under_load() {
        let q = Arc::new(PairQueue::new());
        let producer = Arc::clone(&q);
        std::thread::scope(|scope| {
            scope.spawn(move || {
                for i in 0..10_000u64 {
                    producer.push(Msg {
                        src: 0,
                        seq: i,
                        words: vec![i],
                        arrival: 0.0,
                    });
                }
            });
            let mut expect = 0u64;
            while expect < 10_000 {
                if let Some(m) = q.pop() {
                    assert_eq!(m.seq, expect);
                    expect += 1;
                } else {
                    std::hint::spin_loop();
                }
            }
        });
    }

    /// A profiled 2-PE ping-pong: both rings record the traffic, the
    /// collector drains a structurally complete profile, and send→recv
    /// pairs match by sequence number.
    #[test]
    fn profiled_endpoints_record_traffic_and_barriers() {
        let (eps, coll) = ThreadsTransport::endpoints_profiled(2, 0);
        std::thread::scope(|scope| {
            for (rank, mut ep) in eps.into_iter().enumerate() {
                scope.spawn(move || {
                    for seq in 0..5u64 {
                        ep.send(
                            1 - rank,
                            Msg {
                                src: rank,
                                seq,
                                words: vec![seq; 3],
                                arrival: 0.0,
                            },
                        );
                    }
                    let mut got = 0;
                    while got < 5 {
                        if ep.try_recv().is_some() {
                            got += 1;
                        } else {
                            std::hint::spin_loop();
                        }
                    }
                    ep.barrier();
                });
            }
        });
        let profile = coll.drain();
        assert_eq!(profile.p, 2);
        assert_eq!(profile.events_dropped(), 0);
        for log in &profile.per_pe {
            let sends = log
                .events
                .iter()
                .filter(|e| matches!(e.kind, WallEventKind::Send { .. }))
                .count();
            let recvs = log
                .events
                .iter()
                .filter(|e| matches!(e.kind, WallEventKind::Recv { .. }))
                .count();
            assert_eq!(sends, 5, "rank {} sends", log.rank);
            assert_eq!(recvs, 5, "rank {} recvs", log.rank);
            assert_eq!(log.meters.barrier_waits, 1, "rank {}", log.rank);
        }
        let s = profile.contention();
        assert_eq!(s.events_recorded, profile.events_recorded());
        assert!(s.max_occupancy() >= 1, "at least one message was queued");
    }

    /// A tiny ring on a profiled run overflows into counted drops; the
    /// data plane itself is unaffected and every message still arrives.
    #[test]
    fn profiled_ring_overflow_drops_never_stalls() {
        let (eps, coll) = ThreadsTransport::endpoints_profiled(2, 4);
        std::thread::scope(|scope| {
            for (rank, mut ep) in eps.into_iter().enumerate() {
                scope.spawn(move || {
                    for seq in 0..100u64 {
                        ep.send(
                            1 - rank,
                            Msg {
                                src: rank,
                                seq,
                                words: vec![seq],
                                arrival: 0.0,
                            },
                        );
                    }
                    let mut expect = 0u64;
                    while expect < 100 {
                        if let Some(m) = ep.try_recv() {
                            assert_eq!(m.seq, expect, "FIFO must survive profiling");
                            expect += 1;
                        } else {
                            std::hint::spin_loop();
                        }
                    }
                });
            }
        });
        let profile = coll.drain();
        assert!(profile.events_dropped() > 0, "tiny ring must overflow");
        for log in &profile.per_pe {
            assert_eq!(log.events.len(), 4, "rank {} ring capacity", log.rank);
        }
    }

    #[test]
    fn peer_panic_poisons_the_transport() {
        let eps = ThreadsTransport::endpoints(3);
        // endpoints are consumed whole by the rank threads; unwind safety
        // is the very property under test
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            std::thread::scope(|scope| {
                for (rank, ep) in eps.into_iter().enumerate() {
                    scope.spawn(move || {
                        // bind the endpoint in the panicking thread so its
                        // Drop runs during the unwind
                        let ep = ep;
                        if rank == 1 {
                            panic!("rank 1 dies");
                        }
                        // siblings head into a barrier rank 1 never reaches
                        ep.barrier();
                    });
                }
            })
        }));
        assert!(outcome.is_err(), "scope must re-raise, not hang");
    }
}

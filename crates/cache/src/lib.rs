//! # tricount-cache — bounded, coherent caching of remote adjacency lists
//!
//! The request–response counting variants (CETRIC/DITRIC), distributed LCC,
//! edge support and the delta-update protocol all ship adjacency lists from
//! the rank that owns them to the rank that needs them.  Against a resident
//! graph the same lists are re-shipped on every query; this crate gives each
//! PE a bounded cache of lists it has received so the owner can send a
//! two-word *reference* instead of the full list.
//!
//! ## Design: a mirrored directory, committed deterministically
//!
//! The cache is **symmetric**: for every pair `(owner i, holder j)` there is
//! a *held* partition on rank `j` (the actual lists, keyed by
//! [`CacheKey`]) and a *mirror* partition on rank `i` (the owner's record of
//! what `j` holds — sizes only, no data).  The owner consults its mirror
//! before posting a list; a mirror hit means `j` is guaranteed to have the
//! entry, so a reference is safe.  Both partitions run the **same**
//! deterministic admission and eviction logic over the **same** event
//! stream, so they can never disagree.
//!
//! Determinism under reordering transports (grid routing, real threads) is
//! obtained by the *prior-run-entries-only* rule: during a run, lookups see
//! only the snapshot committed before the run started; everything shipped or
//! used during the run is staged into a [`CacheRunLog`] and committed at a
//! deterministic point afterwards, in canonical sorted order (touches, then
//! inserts, each sorted by key).  Arrival order therefore cannot influence
//! cache state, and the meters stay bit-identical across transports.
//!
//! ## Coherence
//!
//! The delta protocol is the single writer.  When `update_route` discovers
//! the effective edges of a batch, each owner looks up the touched vertices
//! in its mirror partitions and emits, to every holder, either a targeted
//! *invalidation* or (for [`ListKind::Full`] entries, which track the
//! current merged adjacency) an in-place *patch* — the inserted/deleted
//! neighbor ids.  A patched entry equals the post-state merged list, so
//! subsequent reference sends remain bit-exact.  Compaction re-runs
//! orientation and contraction, so [`ListKind::Oriented`] and
//! [`ListKind::Contracted`] entries are flushed when the generation tag on
//! `PreparedRank` bumps; `Full` entries describe the merged graph, which
//! compaction preserves, so they survive.
//!
//! The crate is dependency-free and knows nothing about the runtime: rank
//! programs talk to it through a [`CacheSession`], and the caller (engine,
//! driver or test) owns the per-rank [`RankCache`] storage.

#![warn(missing_docs)]

use std::collections::BTreeMap;

/// Which derived form of an adjacency list an entry caches.
///
/// The kind is part of the key: the same vertex can have a contracted list
/// (CETRIC / LCC), an oriented list (DITRIC family) and a full merged list
/// (support / delta) cached independently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ListKind {
    /// The current merged adjacency `N(v)` (base CSR ⊕ overlay).  Kept
    /// coherent by `update_route` patches/invalidations and survives
    /// compaction (which preserves merged content).
    Full,
    /// The degree-oriented out-neighborhood `A(v)` shipped by the DITRIC
    /// family.  Flushed on generation bump.
    Oriented,
    /// The contracted cut-graph list shipped by CETRIC and distributed LCC.
    /// Flushed on generation bump.
    Contracted,
}

/// Cache key: list kind plus global vertex id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct CacheKey {
    /// Which derived list this entry holds.
    pub kind: ListKind,
    /// Global vertex id of the list's head.
    pub v: u64,
}

impl CacheKey {
    /// Convenience constructor.
    pub fn new(kind: ListKind, v: u64) -> Self {
        CacheKey { kind, v }
    }
}

/// Eviction policy for a partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Eviction {
    /// Least-recently-used: references refresh recency (default).
    Lru,
    /// First-in-first-out: recency is fixed at admission.
    Fifo,
}

/// Cache configuration, carried on `DistConfig` (and therefore `Copy`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheConfig {
    /// Master switch.  Off means the protocols use their original wire
    /// formats and never consult the cache, so runs are bit-identical to a
    /// build without the cache.
    pub enabled: bool,
    /// Total per-PE budget for cached list words.  Split evenly into
    /// per-(owner, holder) partition budgets so the sender-side mirror and
    /// the receiver-side store can run identical eviction independently.
    pub budget_words: u64,
    /// Eviction policy (applies to every partition).
    pub policy: Eviction,
    /// Patch clean [`ListKind::Full`] entries in place on update instead of
    /// invalidating them.
    pub patch: bool,
    /// Emit and apply coherence traffic on `update_route`.  Disabling this
    /// is a *mutation knob for tests only*: caches go stale and cached
    /// counts diverge — the verify bit-equality harness must catch it.
    pub coherence: bool,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            enabled: false,
            budget_words: 1 << 22,
            policy: Eviction::Lru,
            patch: true,
            coherence: true,
        }
    }
}

impl CacheConfig {
    /// An enabled config with the given per-PE word budget.
    pub fn with_budget(budget_words: u64) -> Self {
        CacheConfig {
            enabled: true,
            budget_words,
            ..CacheConfig::default()
        }
    }

    /// The budget actually honored once the §IV-A memory bound is applied:
    /// the cache may never claim more words than the per-PE memory limit.
    pub fn effective_budget(&self, memory_limit_words: Option<u64>) -> u64 {
        match memory_limit_words {
            Some(limit) => self.budget_words.min(limit),
            None => self.budget_words,
        }
    }
}

/// Whose partition a log event targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Peer {
    /// A held partition: `Held(owner)` — lists this rank received from
    /// `owner`.
    Held(usize),
    /// A mirror partition: `Mirror(holder)` — this rank's record of what
    /// `holder` caches of *our* lists.
    Mirror(usize),
}

#[derive(Debug, Clone, Default)]
struct Entry {
    words: u64,
    last_touch: u64,
    /// `Some` in held partitions, `None` in mirrors.
    data: Option<Vec<u64>>,
}

#[derive(Debug, Clone, Default)]
struct Partition {
    entries: BTreeMap<CacheKey, Entry>,
    used_words: u64,
    clock: u64,
}

impl Partition {
    fn touch(&mut self, key: &CacheKey, policy: Eviction) {
        if let Some(e) = self.entries.get_mut(key) {
            if policy == Eviction::Lru {
                e.last_touch = self.clock;
                self.clock += 1;
            }
        }
    }

    fn remove(&mut self, key: &CacheKey) -> Option<Entry> {
        let e = self.entries.remove(key)?;
        self.used_words -= e.words;
        Some(e)
    }

    /// Insert with eviction; returns how many entries were evicted.
    fn insert(&mut self, key: CacheKey, words: u64, data: Option<Vec<u64>>, budget: u64) -> u64 {
        if words > budget {
            // Oversized lists are never admitted — identically on both
            // sides, so the mirror can't promise what the holder dropped.
            return 0;
        }
        if let Some(existing) = self.entries.get_mut(&key) {
            // Re-insert (e.g. two concurrent query jobs staged the same
            // list): refresh content and recency, keep accounting straight.
            self.used_words -= existing.words;
            self.used_words += words;
            existing.words = words;
            existing.data = data;
            existing.last_touch = self.clock;
            self.clock += 1;
            return 0;
        }
        let mut evicted = 0;
        while self.used_words + words > budget {
            // Victim: minimum (last_touch, key) — deterministic on both
            // sides of the mirror.
            let victim = self
                .entries
                .iter()
                .min_by_key(|(k, e)| (e.last_touch, **k))
                .map(|(k, _)| *k)
                .expect("eviction loop with empty partition");
            self.remove(&victim);
            evicted += 1;
        }
        self.entries.insert(
            key,
            Entry {
                words,
                last_touch: self.clock,
                data,
            },
        );
        self.clock += 1;
        self.used_words += words;
        evicted
    }
}

/// Per-PE cache storage: held partitions (lists received, keyed by owner)
/// plus mirror partitions (what each holder keeps of our lists).
#[derive(Debug, Clone)]
pub struct RankCache {
    cfg: CacheConfig,
    partition_budget: u64,
    generation: u64,
    held: BTreeMap<usize, Partition>,
    mirror: BTreeMap<usize, Partition>,
    evictions: u64,
}

impl RankCache {
    /// A cache for one of `num_ranks` PEs.  `memory_limit_words` is the
    /// §IV-A per-PE memory bound, if configured; the cache budget is capped
    /// by it.
    pub fn new(cfg: CacheConfig, num_ranks: usize, memory_limit_words: Option<u64>) -> Self {
        let budget = cfg.effective_budget(memory_limit_words);
        RankCache {
            cfg,
            partition_budget: budget / num_ranks.max(1) as u64,
            generation: 0,
            held: BTreeMap::new(),
            mirror: BTreeMap::new(),
            evictions: 0,
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// The per-(owner, holder) partition budget in words.
    pub fn partition_budget(&self) -> u64 {
        self.partition_budget
    }

    /// Current generation tag (matches `PreparedRank::generation`).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Move to a new generation: orientation and contraction are recomputed
    /// by compaction, so [`ListKind::Oriented`] / [`ListKind::Contracted`]
    /// entries are flushed everywhere.  [`ListKind::Full`] entries describe
    /// the merged graph, which compaction preserves, so they survive.
    pub fn set_generation(&mut self, generation: u64) {
        if generation == self.generation {
            return;
        }
        self.generation = generation;
        for part in self.held.values_mut().chain(self.mirror.values_mut()) {
            let stale: Vec<CacheKey> = part
                .entries
                .keys()
                .filter(|k| k.kind != ListKind::Full)
                .copied()
                .collect();
            for key in stale {
                part.remove(&key);
            }
        }
    }

    /// Does our mirror say `holder` has `key` cached?  Returns the recorded
    /// word count.
    pub fn mirror_lookup(&self, holder: usize, key: &CacheKey) -> Option<u64> {
        self.mirror
            .get(&holder)
            .and_then(|p| p.entries.get(key))
            .map(|e| e.words)
    }

    /// Fetch a held list received from `owner`.
    pub fn held_lookup(&self, owner: usize, key: &CacheKey) -> Option<&[u64]> {
        self.held
            .get(&owner)
            .and_then(|p| p.entries.get(key))
            .and_then(|e| e.data.as_deref())
    }

    /// Every holder whose mirror partition contains `key` (for coherence
    /// fan-out on update).
    pub fn holders_of(&self, key: &CacheKey) -> Vec<usize> {
        self.mirror
            .iter()
            .filter(|(_, p)| p.entries.contains_key(key))
            .map(|(j, _)| *j)
            .collect()
    }

    /// Owner side of an invalidation: forget that `holder` has `key`.
    pub fn mirror_invalidate(&mut self, holder: usize, key: &CacheKey) {
        if let Some(p) = self.mirror.get_mut(&holder) {
            p.remove(key);
        }
    }

    /// Owner side of a patch: the holder's entry for `key` grows by `ins`
    /// and shrinks by `del` words.  Growth may overshoot the partition
    /// budget; both sides tolerate it identically until the next insert.
    pub fn mirror_patch(&mut self, holder: usize, key: &CacheKey, ins: u64, del: u64) {
        if let Some(p) = self.mirror.get_mut(&holder) {
            if let Some(e) = p.entries.get_mut(key) {
                e.words = e.words + ins - del.min(e.words);
                p.used_words = p.used_words + ins - del.min(p.used_words);
            }
        }
    }

    /// Holder side of an invalidation: drop the entry received from
    /// `owner`.  Returns whether an entry was actually dropped.
    pub fn held_invalidate(&mut self, owner: usize, key: &CacheKey) -> bool {
        self.held
            .get_mut(&owner)
            .and_then(|p| p.remove(key))
            .is_some()
    }

    /// Holder side of a patch: splice `other` into (or out of) the sorted
    /// cached list.  Returns whether an entry was present and patched.
    pub fn held_patch(&mut self, owner: usize, key: &CacheKey, insert: bool, other: u64) -> bool {
        let Some(part) = self.held.get_mut(&owner) else {
            return false;
        };
        let Some(entry) = part.entries.get_mut(key) else {
            return false;
        };
        let data = entry.data.as_mut().expect("held entry without data");
        match data.binary_search(&other) {
            Ok(pos) if !insert => {
                data.remove(pos);
                entry.words -= 1;
                part.used_words -= 1;
                true
            }
            Err(pos) if insert => {
                data.insert(pos, other);
                entry.words += 1;
                part.used_words += 1;
                true
            }
            // The effectiveness filter upstream guarantees inserts are
            // absent and deletes present; anything else is a no-op.
            _ => true,
        }
    }

    /// Commit a run log: touches first, then inserts, each in canonical
    /// sorted order, with duplicates collapsed.  Returns the number of
    /// held-side evictions (the mirror side runs the same evictions but
    /// they are the same events, so they are not double-counted).
    pub fn commit(&mut self, log: &CacheRunLog) -> u64 {
        let mut touches = log.touches.clone();
        touches.sort_unstable();
        touches.dedup();
        let policy = self.cfg.policy;
        for (peer, key) in &touches {
            let part = self.partition_mut(*peer);
            part.touch(key, policy);
        }
        let mut order: Vec<usize> = (0..log.inserts.len()).collect();
        order.sort_unstable_by_key(|&i| (log.inserts[i].peer, log.inserts[i].key));
        order.dedup_by_key(|i| (log.inserts[*i].peer, log.inserts[*i].key));
        let mut held_evictions = 0;
        for i in order {
            let ins = &log.inserts[i];
            let budget = self.partition_budget;
            let is_held = matches!(ins.peer, Peer::Held(_));
            let part = self.partition_mut(ins.peer);
            let evicted = part.insert(ins.key, ins.words, ins.data.clone(), budget);
            if is_held {
                held_evictions += evicted;
            }
        }
        self.evictions += held_evictions;
        held_evictions
    }

    fn partition_mut(&mut self, peer: Peer) -> &mut Partition {
        match peer {
            Peer::Held(owner) => self.held.entry(owner).or_default(),
            Peer::Mirror(holder) => self.mirror.entry(holder).or_default(),
        }
    }

    /// Number of held (data-carrying) entries currently resident.
    pub fn held_entries(&self) -> u64 {
        self.held.values().map(|p| p.entries.len() as u64).sum()
    }

    /// Words of held list data currently resident.
    pub fn resident_words(&self) -> u64 {
        self.held.values().map(|p| p.used_words).sum()
    }

    /// Cumulative held-side evictions since construction.
    pub fn total_evictions(&self) -> u64 {
        self.evictions
    }

    /// Drop everything (used when a run is abandoned and the log is lost —
    /// cold is always safe, stale never is).
    pub fn flush_all(&mut self) {
        self.held.clear();
        self.mirror.clear();
    }

    #[cfg(test)]
    fn mirror_words(&self, holder: usize) -> u64 {
        self.mirror.get(&holder).map_or(0, |p| p.used_words)
    }
}

/// One staged insert in a [`CacheRunLog`].
#[derive(Debug, Clone)]
pub struct StagedInsert {
    /// Which partition the entry lands in.
    pub peer: Peer,
    /// The entry's key.
    pub key: CacheKey,
    /// List length in words.
    pub words: u64,
    /// List data (held side) or `None` (mirror side).
    pub data: Option<Vec<u64>>,
}

/// Everything a run wants to change in the cache, staged for deterministic
/// post-run commit.
#[derive(Debug, Clone, Default)]
pub struct CacheRunLog {
    /// Reference uses: recency refreshes for existing entries.
    pub touches: Vec<(Peer, CacheKey)>,
    /// New entries shipped (held side) or promised (mirror side).
    pub inserts: Vec<StagedInsert>,
}

impl CacheRunLog {
    /// True when the run neither touched nor staged anything.
    pub fn is_empty(&self) -> bool {
        self.touches.is_empty() && self.inserts.is_empty()
    }
}

/// Counters a run reports about its cache interactions.  Word counters
/// measure adjacency *list* words (headers excluded), which is the quantity
/// the words-saved claim is made about.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheReport {
    /// Sender-side mirror lookups performed.
    pub lookups: u64,
    /// Lookups that allowed a reference send.
    pub hits: u64,
    /// Lookups that fell through to a full send.
    pub misses: u64,
    /// Adjacency list words actually shipped (full sends, all modes).
    pub words_shipped: u64,
    /// Adjacency list words avoided by reference sends.
    pub words_saved: u64,
    /// Holder-side invalidations applied.
    pub invalidations: u64,
    /// Holder-side in-place patches applied.
    pub patches: u64,
    /// Held-side evictions during commit.
    pub evictions: u64,
    /// Lists staged for insertion on the holder side.
    pub staged: u64,
}

impl CacheReport {
    /// Accumulate another report into this one.
    pub fn absorb(&mut self, other: &CacheReport) {
        self.lookups += other.lookups;
        self.hits += other.hits;
        self.misses += other.misses;
        self.words_shipped += other.words_shipped;
        self.words_saved += other.words_saved;
        self.invalidations += other.invalidations;
        self.patches += other.patches;
        self.evictions += other.evictions;
        self.staged += other.staged;
    }
}

/// Which state a delta count pass runs against.  The deletion pass streams
/// *pre-state* lists while cached `Full` entries are already patched to the
/// post-state, so it must neither reference nor stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CachePass {
    /// Pre-state pass: meter shipped words, but no lookups and no staging.
    Pre,
    /// Post-state pass (the default): full cache participation.
    Post,
}

enum Handle<'a> {
    /// No session: legacy call sites; zero overhead, no metering.
    Off,
    /// Cache disabled but adjacency words still metered (so `EngineStats`
    /// can report the adjacency/collective comm split either way).
    Metered,
    /// Concurrent query run: snapshot lookups, log returned to the caller
    /// (the engine) for deterministic in-order commit.
    Read(&'a RankCache),
    /// Exclusive run (updates, one-shot drivers): lookups plus eager
    /// coherence, self-commits on [`CacheSession::finish`].
    Write(&'a mut RankCache),
}

/// What [`CacheSession::finish`] hands back.
#[derive(Debug, Default)]
pub struct CacheRunOutcome {
    /// The staged log (empty for write sessions, which commit themselves).
    pub log: CacheRunLog,
    /// The run's counters.
    pub report: CacheReport,
}

/// A rank program's handle on the cache for one run.
///
/// Protocol code calls [`sender_check`](CacheSession::sender_check) before
/// posting a list, [`recv_full`](CacheSession::recv_full) /
/// [`recv_ref`](CacheSession::recv_ref) in receive handlers, and the caller
/// finishes the session after the run.  With an [`off`](CacheSession::off)
/// session every method is a cheap no-op and the wire formats are the
/// original ones, bit-identical to a build without this crate.
pub struct CacheSession<'a> {
    handle: Handle<'a>,
    pass: CachePass,
    log: CacheRunLog,
    report: CacheReport,
}

impl<'a> CacheSession<'a> {
    /// No session at all (legacy entry points).
    pub fn off() -> Self {
        CacheSession {
            handle: Handle::Off,
            pass: CachePass::Post,
            log: CacheRunLog::default(),
            report: CacheReport::default(),
        }
    }

    /// Metering-only session: cache disabled, adjacency words counted.
    pub fn metered() -> Self {
        CacheSession {
            handle: Handle::Metered,
            ..CacheSession::off()
        }
    }

    /// Read session over a committed snapshot (concurrent query runs).
    pub fn read(cache: &'a RankCache) -> Self {
        CacheSession {
            handle: Handle::Read(cache),
            ..CacheSession::off()
        }
    }

    /// Write session with exclusive cache access (updates, one-shot runs).
    /// Aligns the cache to `generation` first, flushing stale kinds.
    pub fn write(cache: &'a mut RankCache, generation: u64) -> Self {
        cache.set_generation(generation);
        CacheSession {
            handle: Handle::Write(cache),
            ..CacheSession::off()
        }
    }

    /// Whether the cache-aware wire formats are in effect.  Must agree on
    /// every rank of a run, so it is purely a function of the config.
    pub fn active(&self) -> bool {
        matches!(self.handle, Handle::Read(_) | Handle::Write(_))
    }

    /// Set the pass mode (see [`CachePass`]).
    pub fn set_pass(&mut self, pass: CachePass) {
        self.pass = pass;
    }

    fn cache(&self) -> Option<&RankCache> {
        match &self.handle {
            Handle::Read(c) => Some(c),
            Handle::Write(c) => Some(c),
            _ => None,
        }
    }

    fn cache_mut(&mut self) -> Option<&mut RankCache> {
        match &mut self.handle {
            Handle::Write(c) => Some(c),
            _ => None,
        }
    }

    /// Sender side: may a reference be sent to `holder` instead of the
    /// `words`-long list for `(kind, v)`?  Meters shipped/saved words in
    /// every mode and stages the mirror bookkeeping when active.
    pub fn sender_check(&mut self, holder: usize, kind: ListKind, v: u64, words: u64) -> bool {
        if !self.active() || self.pass == CachePass::Pre {
            self.report.words_shipped += words;
            return false;
        }
        let key = CacheKey::new(kind, v);
        self.report.lookups += 1;
        if self
            .cache()
            .expect("active session without cache")
            .mirror_lookup(holder, &key)
            .is_some()
        {
            self.report.hits += 1;
            self.report.words_saved += words;
            self.log.touches.push((Peer::Mirror(holder), key));
            true
        } else {
            self.report.misses += 1;
            self.report.words_shipped += words;
            self.log.inserts.push(StagedInsert {
                peer: Peer::Mirror(holder),
                key,
                words,
                data: None,
            });
            false
        }
    }

    /// Receiver side: a full list arrived from `owner`; stage it (post-state
    /// passes of active sessions only).
    pub fn recv_full(&mut self, owner: usize, kind: ListKind, v: u64, list: &[u64]) {
        if !self.active() || self.pass == CachePass::Pre {
            return;
        }
        self.report.staged += 1;
        self.log.inserts.push(StagedInsert {
            peer: Peer::Held(owner),
            key: CacheKey::new(kind, v),
            words: list.len() as u64,
            data: Some(list.to_vec()),
        });
    }

    /// Receiver side: a reference arrived from `owner`; resolve it against
    /// the committed snapshot.  A miss here is a coherence-protocol bug —
    /// the owner's mirror promised the entry — so it panics loudly.
    pub fn recv_ref(&mut self, owner: usize, kind: ListKind, v: u64) -> Vec<u64> {
        let key = CacheKey::new(kind, v);
        let data = self
            .cache()
            .expect("reference received without an active session")
            .held_lookup(owner, &key)
            .unwrap_or_else(|| {
                panic!("coherence violation: rank has no cached {key:?} from {owner}")
            })
            .to_vec();
        self.log.touches.push((Peer::Held(owner), key));
        data
    }

    /// Owner side of coherence (write sessions): holders of `(Full, v)`.
    pub fn holders_of_full(&self, v: u64) -> Vec<usize> {
        match self.cache() {
            Some(c) => c.holders_of(&CacheKey::new(ListKind::Full, v)),
            None => Vec::new(),
        }
    }

    /// Owner side of coherence: record that `holder`'s `(Full, v)` entry
    /// was invalidated.
    pub fn mirror_invalidate(&mut self, holder: usize, v: u64) {
        let key = CacheKey::new(ListKind::Full, v);
        if let Some(c) = self.cache_mut() {
            c.mirror_invalidate(holder, &key);
        }
    }

    /// Owner side of coherence: record that `holder`'s `(Full, v)` entry
    /// was patched with `ins` insertions and `del` deletions.
    pub fn mirror_patch(&mut self, holder: usize, v: u64, ins: u64, del: u64) {
        let key = CacheKey::new(ListKind::Full, v);
        if let Some(c) = self.cache_mut() {
            c.mirror_patch(holder, &key, ins, del);
        }
    }

    /// Holder side of coherence: apply an incoming `[v, op, other]` record
    /// from `owner` (op 0 = invalidate, 1 = patch-insert, 2 = patch-delete).
    pub fn apply_coherence(&mut self, owner: usize, v: u64, op: u64, other: u64) {
        let key = CacheKey::new(ListKind::Full, v);
        let Some(c) = self.cache_mut() else { return };
        match op {
            0 => {
                if c.held_invalidate(owner, &key) {
                    self.report.invalidations += 1;
                }
            }
            1 => {
                if c.held_patch(owner, &key, true, other) {
                    self.report.patches += 1;
                }
            }
            2 => {
                if c.held_patch(owner, &key, false, other) {
                    self.report.patches += 1;
                }
            }
            _ => panic!("unknown coherence op {op}"),
        }
    }

    /// End the run.  Write sessions commit their log into the cache (the
    /// outcome's log comes back empty); read/metered/off sessions return
    /// the log for the caller to commit at its deterministic point.
    pub fn finish(mut self) -> CacheRunOutcome {
        if let Handle::Write(cache) = &mut self.handle {
            self.report.evictions += cache.commit(&self.log);
            self.log = CacheRunLog::default();
        }
        CacheRunOutcome {
            log: self.log,
            report: self.report,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(budget: u64) -> CacheConfig {
        CacheConfig::with_budget(budget)
    }

    fn insert(peer: Peer, v: u64, words: u64) -> StagedInsert {
        StagedInsert {
            peer,
            key: CacheKey::new(ListKind::Contracted, v),
            words,
            data: match peer {
                Peer::Held(_) => Some(vec![7; words as usize]),
                Peer::Mirror(_) => None,
            },
        }
    }

    #[test]
    fn budget_is_honored_and_partitioned() {
        // 2 ranks → partition budget = 100 / 2 = 50 words.
        let mut c = RankCache::new(cfg(100), 2, None);
        assert_eq!(c.partition_budget(), 50);
        let log = CacheRunLog {
            touches: vec![],
            inserts: vec![
                insert(Peer::Held(0), 1, 30),
                insert(Peer::Held(0), 2, 30),
                insert(Peer::Held(1), 3, 40),
            ],
        };
        let evicted = c.commit(&log);
        // Partition (owner 0): 30 + 30 > 50 → the older entry goes.
        assert_eq!(evicted, 1);
        assert!(c
            .held_lookup(0, &CacheKey::new(ListKind::Contracted, 1))
            .is_none());
        assert!(c
            .held_lookup(0, &CacheKey::new(ListKind::Contracted, 2))
            .is_some());
        // Partition (owner 1) is independent.
        assert!(c
            .held_lookup(1, &CacheKey::new(ListKind::Contracted, 3))
            .is_some());
        assert!(c.resident_words() <= 100);
    }

    #[test]
    fn memory_limit_caps_budget() {
        let c = RankCache::new(cfg(1 << 30), 4, Some(400));
        assert_eq!(c.partition_budget(), 100);
    }

    #[test]
    fn oversized_lists_are_never_admitted() {
        let mut c = RankCache::new(cfg(40), 2, None); // partition budget 20
        let log = CacheRunLog {
            touches: vec![],
            inserts: vec![insert(Peer::Held(0), 1, 21)],
        };
        assert_eq!(c.commit(&log), 0);
        assert_eq!(c.held_entries(), 0);
    }

    #[test]
    fn commit_is_order_independent() {
        let a = CacheRunLog {
            touches: vec![
                (Peer::Held(0), CacheKey::new(ListKind::Contracted, 2)),
                (Peer::Held(0), CacheKey::new(ListKind::Contracted, 1)),
            ],
            inserts: vec![insert(Peer::Held(0), 5, 10), insert(Peer::Held(0), 4, 10)],
        };
        let b = CacheRunLog {
            touches: a.touches.iter().rev().copied().collect(),
            inserts: a.inserts.iter().rev().cloned().collect(),
        };
        let mut warm = CacheRunLog::default();
        warm.inserts.push(insert(Peer::Held(0), 1, 10));
        warm.inserts.push(insert(Peer::Held(0), 2, 10));

        let mut ca = RankCache::new(cfg(60), 2, None);
        let mut cb = RankCache::new(cfg(60), 2, None);
        ca.commit(&warm);
        cb.commit(&warm);
        ca.commit(&a);
        cb.commit(&b);
        for v in [1, 2, 4, 5] {
            let k = CacheKey::new(ListKind::Contracted, v);
            assert_eq!(
                ca.held_lookup(0, &k).is_some(),
                cb.held_lookup(0, &k).is_some()
            );
        }
        assert_eq!(ca.resident_words(), cb.resident_words());
    }

    #[test]
    fn lru_touch_protects_entries_fifo_does_not() {
        for (policy, survivor) in [(Eviction::Lru, 1), (Eviction::Fifo, 2)] {
            let mut config = cfg(40); // partition budget 20 with 2 ranks
            config.policy = policy;
            let mut c = RankCache::new(config, 2, None);
            c.commit(&CacheRunLog {
                touches: vec![],
                inserts: vec![insert(Peer::Held(0), 1, 10), insert(Peer::Held(0), 2, 10)],
            });
            // Touch 1, then insert 3 (forces one eviction).
            c.commit(&CacheRunLog {
                touches: vec![(Peer::Held(0), CacheKey::new(ListKind::Contracted, 1))],
                inserts: vec![insert(Peer::Held(0), 3, 10)],
            });
            let k = |v| CacheKey::new(ListKind::Contracted, v);
            assert!(
                c.held_lookup(0, &k(survivor)).is_some(),
                "{policy:?}: {survivor} should survive"
            );
            assert!(c.held_lookup(0, &k(3)).is_some());
            assert_eq!(c.held_entries(), 2);
        }
    }

    /// Replay the same traffic through an owner's mirror and a holder's
    /// held partition: they must agree on membership forever.
    #[test]
    fn mirror_and_held_stay_in_sync() {
        let mut owner = RankCache::new(cfg(60), 3, None); // rank 0
        let mut holder = RankCache::new(cfg(60), 3, None); // rank 1
        for round in 0..6u64 {
            let mut owner_sess = CacheSession::write(&mut owner, 0);
            let mut wire: Vec<(u64, Option<u64>)> = Vec::new();
            for v in [round % 4, (round + 1) % 4, 7] {
                let words = 5 + v;
                if owner_sess.sender_check(1, ListKind::Contracted, v, words) {
                    wire.push((v, None)); // reference send
                } else {
                    wire.push((v, Some(words))); // full send
                }
            }
            owner_sess.finish();
            let mut holder_sess = CacheSession::write(&mut holder, 0);
            for (v, full) in &wire {
                match full {
                    Some(words) => {
                        let list: Vec<u64> = (0..*words).collect();
                        holder_sess.recv_full(0, ListKind::Contracted, *v, &list);
                    }
                    None => {
                        let _ = holder_sess.recv_ref(0, ListKind::Contracted, *v);
                    }
                }
            }
            holder_sess.finish();
            // Membership must agree on every key.
            for v in 0..9u64 {
                let k = CacheKey::new(ListKind::Contracted, v);
                assert_eq!(
                    owner.mirror_lookup(1, &k).is_some(),
                    holder.held_lookup(0, &k).is_some(),
                    "round {round}, v {v}"
                );
            }
        }
        assert_eq!(owner.mirror_words(1), holder.resident_words());
    }

    #[test]
    fn patch_splices_sorted_lists() {
        let mut c = RankCache::new(cfg(100), 2, None);
        c.commit(&CacheRunLog {
            touches: vec![],
            inserts: vec![StagedInsert {
                peer: Peer::Held(0),
                key: CacheKey::new(ListKind::Full, 9),
                words: 3,
                data: Some(vec![2, 5, 8]),
            }],
        });
        let k = CacheKey::new(ListKind::Full, 9);
        assert!(c.held_patch(0, &k, true, 6));
        assert!(c.held_patch(0, &k, false, 2));
        assert_eq!(c.held_lookup(0, &k).unwrap(), &[5, 6, 8]);
        assert_eq!(c.resident_words(), 3);
    }

    #[test]
    fn generation_bump_flushes_derived_kinds_only() {
        let mut c = RankCache::new(cfg(100), 2, None);
        c.commit(&CacheRunLog {
            touches: vec![],
            inserts: vec![
                StagedInsert {
                    peer: Peer::Held(0),
                    key: CacheKey::new(ListKind::Full, 1),
                    words: 2,
                    data: Some(vec![3, 4]),
                },
                StagedInsert {
                    peer: Peer::Held(0),
                    key: CacheKey::new(ListKind::Oriented, 1),
                    words: 1,
                    data: Some(vec![4]),
                },
                insert(Peer::Held(0), 2, 2),
                insert(Peer::Mirror(1), 2, 2),
            ],
        });
        c.set_generation(1);
        assert!(c
            .held_lookup(0, &CacheKey::new(ListKind::Full, 1))
            .is_some());
        assert!(c
            .held_lookup(0, &CacheKey::new(ListKind::Oriented, 1))
            .is_none());
        assert!(c
            .held_lookup(0, &CacheKey::new(ListKind::Contracted, 2))
            .is_none());
        assert!(c
            .mirror_lookup(1, &CacheKey::new(ListKind::Contracted, 2))
            .is_none());
        assert_eq!(c.resident_words(), 2);
    }

    #[test]
    fn session_modes_meter_without_caching() {
        let mut off = CacheSession::off();
        assert!(!off.sender_check(1, ListKind::Full, 3, 10));
        assert_eq!(off.finish().report.words_shipped, 10);

        let mut metered = CacheSession::metered();
        assert!(!metered.sender_check(1, ListKind::Full, 3, 10));
        metered.recv_full(0, ListKind::Full, 3, &[1, 2]);
        let out = metered.finish();
        assert_eq!(out.report.words_shipped, 10);
        assert_eq!(out.report.staged, 0);
        assert!(out.log.is_empty());
    }

    #[test]
    fn pre_pass_neither_references_nor_stages() {
        let mut cache = RankCache::new(cfg(100), 2, None);
        cache.commit(&CacheRunLog {
            touches: vec![],
            inserts: vec![StagedInsert {
                peer: Peer::Mirror(1),
                key: CacheKey::new(ListKind::Full, 3),
                words: 4,
                data: None,
            }],
        });
        let mut s = CacheSession::write(&mut cache, 0);
        s.set_pass(CachePass::Pre);
        // Mirror knows holder 1 has v=3, but the pre pass must ship anyway.
        assert!(!s.sender_check(1, ListKind::Full, 3, 4));
        s.recv_full(0, ListKind::Full, 9, &[1, 2, 3]);
        s.set_pass(CachePass::Post);
        assert!(s.sender_check(1, ListKind::Full, 3, 4));
        let out = s.finish();
        assert_eq!(out.report.hits, 1);
        assert_eq!(out.report.staged, 0);
        assert_eq!(out.report.words_shipped, 4);
        assert_eq!(out.report.words_saved, 4);
    }

    #[test]
    fn coherence_roundtrip_invalidation_and_patch() {
        let mut owner = RankCache::new(cfg(100), 2, None);
        let mut holder = RankCache::new(cfg(100), 2, None);
        // Warm: holder caches (Full, 5) = [1, 9] from owner 0.
        {
            let mut s = CacheSession::write(&mut owner, 0);
            assert!(!s.sender_check(1, ListKind::Full, 5, 2));
            s.finish();
            let mut h = CacheSession::write(&mut holder, 0);
            h.recv_full(0, ListKind::Full, 5, &[1, 9]);
            h.finish();
        }
        // Update touches v=5: insert neighbor 4, delete neighbor 1.
        {
            let mut s = CacheSession::write(&mut owner, 0);
            assert_eq!(s.holders_of_full(5), vec![1]);
            s.mirror_patch(1, 5, 1, 1);
            s.finish();
            let mut h = CacheSession::write(&mut holder, 0);
            h.apply_coherence(0, 5, 1, 4);
            h.apply_coherence(0, 5, 2, 1);
            let rep = h.finish().report;
            assert_eq!(rep.patches, 2);
        }
        assert_eq!(
            holder
                .held_lookup(0, &CacheKey::new(ListKind::Full, 5))
                .unwrap(),
            &[4, 9]
        );
        // Next run: owner still refs, holder resolves the patched list.
        {
            let mut s = CacheSession::write(&mut owner, 0);
            assert!(s.sender_check(1, ListKind::Full, 5, 2));
            s.finish();
            let mut h = CacheSession::write(&mut holder, 0);
            assert_eq!(h.recv_ref(0, ListKind::Full, 5), vec![4, 9]);
            h.finish();
        }
        // Invalidate: both sides forget.
        {
            let mut s = CacheSession::write(&mut owner, 0);
            s.mirror_invalidate(1, 5);
            s.finish();
            let mut h = CacheSession::write(&mut holder, 0);
            h.apply_coherence(0, 5, 0, 0);
            assert_eq!(h.finish().report.invalidations, 1);
        }
        assert!(owner
            .mirror_lookup(1, &CacheKey::new(ListKind::Full, 5))
            .is_none());
        assert!(holder
            .held_lookup(0, &CacheKey::new(ListKind::Full, 5))
            .is_none());
    }

    #[test]
    #[should_panic(expected = "coherence violation")]
    fn ref_to_missing_entry_panics() {
        let cache = RankCache::new(cfg(100), 2, None);
        let mut s = CacheSession::read(&cache);
        let _ = s.recv_ref(0, ListKind::Full, 42);
    }
}

//! DFS schedule exploration: drive a [`Controller`] (pool interleavings) or
//! a scripted [`DeliveryPick`] (message delivery orders) through every
//! schedule reachable within the configured bounds, asserting bit-identical
//! results and no deadlock on each.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

use tricount_comm::{run_guarded, Ctx, DeliveryPick, SimOptions};
use tricount_par::Pool;

use crate::controller::{next_script, AbortReason, Controller, McAbort};

/// Exploration bounds.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Iterative preemption bounding: explore with budgets `0..=b`
    /// (`Some(b)`), or a single unbounded full DFS (`None`). Schedules
    /// reachable under a smaller budget are revisited under larger ones;
    /// the budget trades completeness for tractability, per the usual
    /// context-bounding argument that most concurrency bugs need few
    /// preemptions.
    pub max_preemptions: Option<u32>,
    /// Total schedule budget across all bounds.
    pub max_schedules: usize,
    /// Per-execution decision-step cap (livelock backstop).
    pub max_steps: u64,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_preemptions: Some(2),
            max_schedules: 10_000,
            max_steps: 100_000,
        }
    }
}

/// The outcome of a pool exploration.
#[derive(Debug)]
pub struct PoolReport {
    /// Schedules executed.
    pub schedules: usize,
    /// Whether the schedule space (within the bounds) was fully explored.
    /// False when `max_schedules` ran out or exploration stopped early on a
    /// failure.
    pub exhausted: bool,
    /// First deadlock found: the 1-based schedule number and the reason.
    pub deadlock: Option<(usize, AbortReason)>,
    /// Description of the first result divergence between schedules.
    pub divergence: Option<String>,
}

impl PoolReport {
    /// No deadlock, no divergence, fully explored.
    pub fn passed(&self) -> bool {
        self.exhausted && self.deadlock.is_none() && self.divergence.is_none()
    }
}

enum PoolMode {
    Correct,
    #[cfg(feature = "mc-regressions")]
    Buggy,
}

/// Explores every schedule of a `workers`-wide pool batch within `cfg`'s
/// bounds. `make_tasks` produces a fresh (identical) task set per schedule;
/// `f` must be a pure function of `(index, task)`. Asserts bit-identical
/// sorted results across schedules and reports the first deadlock.
pub fn explore_pool<T, R, F>(
    workers: usize,
    make_tasks: impl Fn() -> Vec<T>,
    f: F,
    cfg: &ExploreConfig,
) -> PoolReport
where
    T: Send,
    R: Send + PartialEq + std::fmt::Debug,
    F: Fn(usize, T) -> R + Sync,
{
    explore_pool_impl(workers, make_tasks, f, cfg, &PoolMode::Correct)
}

/// Like [`explore_pool`], but over the resurrected PR 2 steal path
/// (`Pool::run_tasks_buggy_sched`): the own-deque guard held across steal
/// attempts. Exists so the regression suite can prove the checker finds
/// that deadlock within a bounded budget.
#[cfg(feature = "mc-regressions")]
pub fn explore_pool_buggy<T, R, F>(
    workers: usize,
    make_tasks: impl Fn() -> Vec<T>,
    f: F,
    cfg: &ExploreConfig,
) -> PoolReport
where
    T: Send,
    R: Send + PartialEq + std::fmt::Debug,
    F: Fn(usize, T) -> R + Sync,
{
    explore_pool_impl(workers, make_tasks, f, cfg, &PoolMode::Buggy)
}

fn explore_pool_impl<T, R, F>(
    workers: usize,
    make_tasks: impl Fn() -> Vec<T>,
    f: F,
    cfg: &ExploreConfig,
    mode: &PoolMode,
) -> PoolReport
where
    T: Send,
    R: Send + PartialEq + std::fmt::Debug,
    F: Fn(usize, T) -> R + Sync,
{
    let mut report = PoolReport {
        schedules: 0,
        exhausted: true,
        deadlock: None,
        divergence: None,
    };
    let mut baseline: Option<Vec<(usize, usize, R)>> = None;
    let bounds: Vec<Option<u32>> = match cfg.max_preemptions {
        Some(m) => (0..=m).map(Some).collect(),
        None => vec![None],
    };
    'bounds: for bound in bounds {
        let mut script: Vec<usize> = Vec::new();
        loop {
            if report.schedules >= cfg.max_schedules {
                report.exhausted = false;
                break 'bounds;
            }
            let pool = Pool::new(workers);
            let ctrl = Controller::new(workers, workers, script.clone(), bound, cfg.max_steps);
            let tasks = make_tasks();
            let outcome = catch_unwind(AssertUnwindSafe(|| match mode {
                PoolMode::Correct => pool.run_tasks_sched(tasks, &f, &ctrl).0,
                #[cfg(feature = "mc-regressions")]
                PoolMode::Buggy => pool.run_tasks_buggy_sched(tasks, &f, &ctrl),
            }));
            report.schedules += 1;
            let trail = ctrl.trail();
            match outcome {
                Ok(results) => {
                    let shaped: Vec<(usize, usize, R)> = results
                        .into_iter()
                        .map(|t| (t.task_index, t.worker, t.result))
                        .collect();
                    // worker attribution is schedule-dependent by design;
                    // the *values* must not be
                    let values_match = |a: &[(usize, usize, R)], b: &[(usize, usize, R)]| {
                        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.0 == y.0 && x.2 == y.2)
                    };
                    match &baseline {
                        None => baseline = Some(shaped),
                        Some(b) if !values_match(b, &shaped) => {
                            report.divergence = Some(format!(
                                "schedule {} diverged: {:?} vs baseline {:?}",
                                report.schedules, shaped, b
                            ));
                            report.exhausted = false;
                            break 'bounds;
                        }
                        Some(_) => {}
                    }
                }
                Err(payload) => {
                    if payload.downcast_ref::<McAbort>().is_none() {
                        resume_unwind(payload);
                    }
                    let reason = ctrl
                        .abort_reason()
                        .unwrap_or(AbortReason::Deadlock("unknown".to_string()));
                    report.deadlock = Some((report.schedules, reason));
                    report.exhausted = false;
                    break 'bounds;
                }
            }
            match next_script(&trail) {
                Some(s) => script = s,
                None => break,
            }
        }
    }
    report
}

/// Per-rank scripted delivery chooser for [`explore_delivery`]. Records a
/// per-rank trail of `(arity, chosen)` pairs; choices past the script (or
/// beyond a diverged arity) clamp to the first candidate.
struct ScriptedDelivery {
    state: Mutex<DelState>,
}

struct DelState {
    script: Vec<Vec<usize>>,
    trail: Vec<Vec<(usize, usize)>>,
}

impl DeliveryPick for ScriptedDelivery {
    fn pick(&self, rank: usize, pending: &[(usize, u64)]) -> usize {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        let k = st.trail[rank].len();
        let want = st.script[rank].get(k).copied().unwrap_or(0);
        let chosen = want.min(pending.len() - 1);
        st.trail[rank].push((pending.len(), chosen));
        chosen
    }
}

/// Next unexplored per-rank delivery script, rank-major depth-first:
/// increment the deepest incrementable choice of the highest such rank,
/// truncate that rank's tail, clear later ranks.
fn next_delivery_script(trail: &[Vec<(usize, usize)>]) -> Option<Vec<Vec<usize>>> {
    for r in (0..trail.len()).rev() {
        for i in (0..trail[r].len()).rev() {
            let (arity, chosen) = trail[r][i];
            if chosen + 1 < arity {
                let mut script: Vec<Vec<usize>> = trail
                    .iter()
                    .map(|t| t.iter().map(|&(_, c)| c).collect())
                    .collect();
                script[r].truncate(i);
                script[r].push(chosen + 1);
                for s in script.iter_mut().skip(r + 1) {
                    s.clear();
                }
                return Some(script);
            }
        }
    }
    None
}

/// The outcome of a delivery-order exploration.
#[derive(Debug)]
pub struct DeliveryReport {
    /// Schedules executed.
    pub schedules: usize,
    /// Whether the delivery-order space was exhausted within the budget.
    /// Exploration is best-effort: rank threads run concurrently, so the
    /// pending set an un-scripted pick sees can vary with OS timing; the
    /// canonical `(src, seq)` candidate ordering keeps replays aligned in
    /// practice, and every executed schedule is still a real, checked
    /// delivery order.
    pub exhausted: bool,
    /// First deadlock diagnosed by the watchdog, rendered.
    pub deadlock: Option<(usize, String)>,
    /// First result divergence between schedules.
    pub divergence: Option<String>,
}

impl DeliveryReport {
    /// No deadlock, no divergence.
    pub fn passed(&self) -> bool {
        self.deadlock.is_none() && self.divergence.is_none()
    }
}

/// Explores message delivery orders of rank program `f` on `p` PEs:
/// re-runs the program with every [`DeliveryPick`] schedule reachable
/// within `max_schedules`, asserting bit-identical per-rank results and no
/// deadlock (each run is supervised by the comm watchdog with `timeout`).
pub fn explore_delivery<R, F>(
    p: usize,
    f: F,
    max_schedules: usize,
    timeout: Duration,
) -> DeliveryReport
where
    R: PartialEq + std::fmt::Debug + Send + 'static,
    F: Fn(&mut Ctx) -> R + Send + Sync + 'static,
{
    let f = Arc::new(f);
    let mut report = DeliveryReport {
        schedules: 0,
        exhausted: true,
        deadlock: None,
        divergence: None,
    };
    let mut baseline: Option<Vec<R>> = None;
    let mut script: Vec<Vec<usize>> = vec![Vec::new(); p];
    loop {
        if report.schedules >= max_schedules {
            report.exhausted = false;
            break;
        }
        let chooser = Arc::new(ScriptedDelivery {
            state: Mutex::new(DelState {
                script: script.clone(),
                trail: vec![Vec::new(); p],
            }),
        });
        let opts = SimOptions {
            delivery: Some(chooser.clone() as Arc<dyn DeliveryPick>),
            ..SimOptions::default()
        };
        let fa = Arc::clone(&f);
        let outcome = run_guarded(p, &opts, timeout, move |ctx| fa(ctx));
        report.schedules += 1;
        match outcome {
            Ok(sim) => match &baseline {
                None => baseline = Some(sim.output.results),
                Some(b) => {
                    if *b != sim.output.results {
                        report.divergence = Some(format!(
                            "schedule {} diverged: {:?} vs baseline {:?}",
                            report.schedules, sim.output.results, b
                        ));
                        report.exhausted = false;
                        break;
                    }
                }
            },
            Err(dl) => {
                report.deadlock = Some((report.schedules, dl.to_string()));
                report.exhausted = false;
                break;
            }
        }
        let trail = {
            let st = chooser.state.lock().unwrap_or_else(PoisonError::into_inner);
            st.trail.clone()
        };
        match next_delivery_script(&trail) {
            Some(s) => script = s,
            None => break,
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_delivery_script_rank_major() {
        assert_eq!(next_delivery_script(&[vec![], vec![]]), None);
        assert_eq!(
            next_delivery_script(&[vec![(2, 0)], vec![(3, 2)]]),
            Some(vec![vec![1], vec![]])
        );
        assert_eq!(
            next_delivery_script(&[vec![(2, 1)], vec![(2, 0), (2, 1)]]),
            Some(vec![vec![1], vec![1]])
        );
    }
}

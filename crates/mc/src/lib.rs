//! Bounded schedule-space model checking for the tricount workspace.
//!
//! Two explorers, one discipline:
//!
//! * [`explore_pool`] serialises the work-stealing pool of `tricount-par`
//!   under a [`Controller`] — one worker runs at a time, every scheduling
//!   decision (who runs after a deque lock, a yield, a finish) becomes a
//!   DFS branch — and walks the schedule tree with iterative preemption
//!   bounding, asserting bit-identical task results and no deadlock on
//!   every interleaving.
//! * [`explore_delivery`] drives the `tricount-comm` simulator through
//!   message delivery orders via the [`DeliveryPick`] hook, re-running a
//!   rank program under every reachable per-rank delivery script and
//!   asserting the same invariants (the comm watchdog supplies deadlock
//!   diagnosis).
//!
//! Both are exhaustive for the small fixtures they are meant for (pool
//! width 2–3, p ∈ {1, 4}); the bounds in [`ExploreConfig`] keep larger
//! spaces tractable. No dependencies, no unsafe: the controller serialises
//! real OS threads with a single mutex + condvar handoff.
//!
//! [`DeliveryPick`]: tricount_comm::DeliveryPick

pub mod controller;
pub mod explore;

pub use controller::{next_script, AbortReason, Controller, McAbort};
#[cfg(feature = "mc-regressions")]
pub use explore::explore_pool_buggy;
pub use explore::{explore_delivery, explore_pool, DeliveryReport, ExploreConfig, PoolReport};

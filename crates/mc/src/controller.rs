//! The serialising scheduler behind the model checker.
//!
//! A [`Controller`] implements [`tricount_par::Scheduler`] so that a
//! [`tricount_par::Pool`] batch runs with **exactly one actor executing at a
//! time**: every other worker thread is parked on a condvar. At every
//! *decision point* (a lock acquire, an idle yield, a worker retiring) the
//! running actor consults the controller, which picks the next actor to run
//! from the set of *schedulable* ones — deterministically, driven by a
//! replay `script` recorded as a `trail` of `(arity, chosen)` pairs. The
//! DFS driver in [`crate::explore`] enumerates scripts.
//!
//! Locks are **virtualised**: the controller tracks a grant table mirroring
//! the pool's real deque mutexes. Because actors are serialised and a lock
//! is only granted when free, the real mutexes never contend — a lock cycle
//! that would hang a free-running pool shows up here as "no schedulable
//! actor while some are unfinished", which the controller reports as a
//! deadlock and aborts by unwinding every actor ([`McAbort`]).
//!
//! Idle spinning is made finite: a worker that yields is blocked until some
//! other actor reports progress (task completion), so the schedule tree has
//! no unbounded spin branches. A per-execution step cap backstops livelock.

use std::panic::panic_any;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

use tricount_par::Scheduler;

/// Panic payload used to abort every actor of a doomed execution. The
/// exploration harness catches it with `catch_unwind`; anything else is
/// re-raised.
#[derive(Debug)]
pub struct McAbort;

/// Why an execution was aborted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AbortReason {
    /// No schedulable actor while some are unfinished. The string renders
    /// each stuck actor's held locks and wanted resource.
    Deadlock(String),
    /// The per-execution step cap was exceeded (livelock backstop).
    StepLimit,
}

const NO_ACTOR: usize = usize::MAX;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Waiting {
    /// Runnable: not waiting on anything.
    Ready,
    /// Wants this lock; schedulable iff the lock is free.
    Lock(usize),
    /// Yielded at this progress epoch; schedulable iff the epoch advanced.
    Progress(u64),
    /// Retired.
    Finished,
}

#[derive(Debug)]
struct Ctl {
    waiting: Vec<Waiting>,
    lock_owner: Vec<Option<usize>>,
    current: usize,
    progress_epoch: u64,
    /// Choices to replay, indexed by decision number (arity > 1 only).
    /// Past the end, the first candidate is taken.
    script: Vec<usize>,
    /// Decisions taken this execution: `(arity, chosen)`, arity > 1 only.
    trail: Vec<(usize, usize)>,
    /// `None` = unbounded; `Some(b)` = at most `b` preemptions, after which
    /// the running actor keeps running until it blocks.
    preemption_budget: Option<u32>,
    preemptions_used: u32,
    steps: u64,
    max_steps: u64,
    abort: Option<AbortReason>,
}

/// A deterministic, serialising [`Scheduler`]: one schedule per instance.
#[derive(Debug)]
pub struct Controller {
    state: Mutex<Ctl>,
    cv: Condvar,
}

impl Controller {
    /// A controller for `actors` workers over `locks` virtual locks,
    /// replaying `script` under the given preemption budget and step cap.
    /// The initial "who runs first" decision is taken here, so it is part
    /// of the explored space.
    pub fn new(
        actors: usize,
        locks: usize,
        script: Vec<usize>,
        preemption_budget: Option<u32>,
        max_steps: u64,
    ) -> Self {
        let ctl = Ctl {
            waiting: vec![Waiting::Ready; actors],
            lock_owner: vec![None; locks],
            current: NO_ACTOR,
            progress_epoch: 0,
            script,
            trail: Vec::new(),
            preemption_budget,
            preemptions_used: 0,
            steps: 0,
            max_steps,
            abort: None,
        };
        let c = Controller {
            state: Mutex::new(ctl),
            cv: Condvar::new(),
        };
        {
            let mut g = c.lock();
            c.decide(&mut g, NO_ACTOR);
        }
        c
    }

    fn lock(&self) -> MutexGuard<'_, Ctl> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The decision trail of the finished (or aborted) execution.
    pub fn trail(&self) -> Vec<(usize, usize)> {
        self.lock().trail.clone()
    }

    /// Why the execution aborted, if it did.
    pub fn abort_reason(&self) -> Option<AbortReason> {
        self.lock().abort.clone()
    }

    /// Preemptions charged during the execution.
    pub fn preemptions_used(&self) -> u32 {
        self.lock().preemptions_used
    }

    fn schedulable(ctl: &Ctl, a: usize) -> bool {
        match ctl.waiting[a] {
            Waiting::Ready => true,
            Waiting::Lock(l) => ctl.lock_owner[l].is_none(),
            Waiting::Progress(e) => ctl.progress_epoch > e,
            Waiting::Finished => false,
        }
    }

    fn describe_stuck(ctl: &Ctl) -> String {
        let mut out = String::new();
        for (a, w) in ctl.waiting.iter().enumerate() {
            let holds: Vec<String> = ctl
                .lock_owner
                .iter()
                .enumerate()
                .filter(|&(_, o)| *o == Some(a))
                .map(|(l, _)| l.to_string())
                .collect();
            let wants = match w {
                Waiting::Ready => "ready".to_string(),
                Waiting::Lock(l) => format!("lock {l}"),
                Waiting::Progress(_) => "progress".to_string(),
                Waiting::Finished => "finished".to_string(),
            };
            out.push_str(&format!(
                "actor {a}: holds [{}], waits on {wants}; ",
                holds.join(",")
            ));
        }
        out
    }

    /// Picks the next actor to run. `prev` is the actor standing at the
    /// decision point (`NO_ACTOR` for the initial decision). Callers hold
    /// the state mutex; the choice is a pure function of controller state,
    /// so it does not matter which thread executes it.
    fn decide(&self, ctl: &mut Ctl, prev: usize) {
        if ctl.abort.is_some() {
            self.cv.notify_all();
            return;
        }
        let mut cands: Vec<usize> = (0..ctl.waiting.len())
            .filter(|&a| Self::schedulable(ctl, a))
            .collect();
        if cands.is_empty() {
            if ctl.waiting.iter().all(|w| *w == Waiting::Finished) {
                ctl.current = NO_ACTOR;
                self.cv.notify_all();
                return;
            }
            ctl.abort = Some(AbortReason::Deadlock(Self::describe_stuck(ctl)));
            self.cv.notify_all();
            return;
        }
        if let Some(b) = ctl.preemption_budget {
            if ctl.preemptions_used >= b && prev != NO_ACTOR && Self::schedulable(ctl, prev) {
                // budget exhausted: the running actor keeps running until it
                // genuinely blocks — no branching, no trail entry
                cands = vec![prev];
            }
        }
        let idx = if cands.len() > 1 {
            let k = ctl.trail.len();
            // clamp is a no-op on deterministic replays (same prefix ⇒ same
            // arity); it keeps divergent replays safe instead of panicking
            let want = ctl.script.get(k).copied().unwrap_or(0);
            let idx = want.min(cands.len() - 1);
            ctl.trail.push((cands.len(), idx));
            idx
        } else {
            0
        };
        let chosen = cands[idx];
        if prev != NO_ACTOR && chosen != prev && Self::schedulable(ctl, prev) {
            ctl.preemptions_used += 1;
        }
        ctl.current = chosen;
        self.cv.notify_all();
    }

    /// Parks until `a` is the current actor; panics with [`McAbort`] when
    /// the execution has been aborted.
    fn wait_until_current<'g>(
        &'g self,
        mut g: MutexGuard<'g, Ctl>,
        a: usize,
    ) -> MutexGuard<'g, Ctl> {
        loop {
            if g.abort.is_some() {
                drop(g);
                panic_any(McAbort);
            }
            if g.current == a {
                return g;
            }
            g = self.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Counts a step against the livelock cap; aborts on overflow.
    fn note_step(&self, g: &mut MutexGuard<'_, Ctl>) {
        g.steps += 1;
        if g.steps > g.max_steps {
            g.abort = Some(AbortReason::StepLimit);
            self.cv.notify_all();
        }
    }
}

impl Scheduler for Controller {
    fn actor_started(&self, actor: usize) {
        let g = self.lock();
        let g = self.wait_until_current(g, actor);
        drop(g);
    }

    fn actor_finished(&self, actor: usize) {
        let mut g = self.lock();
        g = self.wait_until_current(g, actor);
        g.waiting[actor] = Waiting::Finished;
        self.decide(&mut g, actor);
        // the thread exits without waiting: it will never run again
    }

    fn lock_acquire(&self, actor: usize, lock: usize) {
        let mut g = self.lock();
        g = self.wait_until_current(g, actor);
        self.note_step(&mut g);
        g.waiting[actor] = Waiting::Lock(lock);
        self.decide(&mut g, actor);
        let mut g = self.wait_until_current(g, actor);
        debug_assert!(g.lock_owner[lock].is_none(), "granted a held lock");
        g.lock_owner[lock] = Some(actor);
        g.waiting[actor] = Waiting::Ready;
    }

    fn lock_release(&self, actor: usize, lock: usize) {
        let mut g = self.lock();
        debug_assert_eq!(g.lock_owner[lock], Some(actor), "release by non-owner");
        g.lock_owner[lock] = None;
    }

    fn progress(&self, _actor: usize) {
        let mut g = self.lock();
        g.progress_epoch += 1;
    }

    fn yield_now(&self, actor: usize) {
        let mut g = self.lock();
        g = self.wait_until_current(g, actor);
        self.note_step(&mut g);
        let epoch = g.progress_epoch;
        g.waiting[actor] = Waiting::Progress(epoch);
        self.decide(&mut g, actor);
        let mut g = self.wait_until_current(g, actor);
        g.waiting[actor] = Waiting::Ready;
    }
}

/// Computes the script of the next unexplored schedule from a finished
/// execution's trail (depth-first: increment the deepest incrementable
/// choice, truncate everything after it). `None` when the space rooted at
/// this trail's prefix is exhausted.
pub fn next_script(trail: &[(usize, usize)]) -> Option<Vec<usize>> {
    let mut i = trail.len();
    while i > 0 {
        i -= 1;
        let (arity, chosen) = trail[i];
        if chosen + 1 < arity {
            let mut s: Vec<usize> = trail[..i].iter().map(|&(_, c)| c).collect();
            s.push(chosen + 1);
            return Some(s);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_script_walks_the_tree() {
        assert_eq!(next_script(&[]), None);
        assert_eq!(next_script(&[(2, 0)]), Some(vec![1]));
        assert_eq!(next_script(&[(2, 1)]), None);
        assert_eq!(next_script(&[(3, 0), (2, 1)]), Some(vec![1]));
        assert_eq!(next_script(&[(2, 0), (3, 1)]), Some(vec![0, 2]));
    }

    #[test]
    fn controller_serialises_and_terminates() {
        use tricount_par::Pool;
        let pool = Pool::new(2);
        let ctrl = Controller::new(2, 2, Vec::new(), None, 10_000);
        let (results, _) = pool.run_tasks_sched((0..4u64).collect(), |_i, x| x * 2, &ctrl);
        assert_eq!(results.len(), 4);
        assert!(ctrl.abort_reason().is_none());
        // at least the initial who-runs-first decision had arity 2
        assert!(!ctrl.trail().is_empty());
    }

    #[test]
    fn replay_is_deterministic() {
        use tricount_par::Pool;
        let run = |script: Vec<usize>| {
            let pool = Pool::new(3);
            let ctrl = Controller::new(3, 3, script, None, 10_000);
            let (r, _) = pool.run_tasks_sched((0..5u64).collect(), |_i, x| x + 7, &ctrl);
            (
                r.into_iter()
                    .map(|t| (t.task_index, t.result))
                    .collect::<Vec<_>>(),
                ctrl.trail(),
            )
        };
        let (r1, t1) = run(Vec::new());
        let (r2, t2) = run(Vec::new());
        assert_eq!(t1, t2, "same script must replay the same trail");
        assert_eq!(r1, r2);
        // replaying a full recorded trail reproduces it
        let script: Vec<usize> = t1.iter().map(|&(_, c)| c).collect();
        let (_, t3) = run(script);
        assert_eq!(t1, t3);
    }
}

//! The model checker must rediscover the PR 2 pool deadlock — the own-deque
//! guard held across steal attempts — within a bounded schedule budget.
//! The buggy steal path is resurrected behind the test-only
//! `mc-regressions` feature; plain `cargo test` never saw this hang
//! because it needs both workers to hit the steal path at once.
#![cfg(feature = "mc-regressions")]

use tricount_mc::{explore_pool_buggy, AbortReason, ExploreConfig};

#[test]
fn rediscovers_pr2_double_deque_lock_deadlock() {
    let cfg = ExploreConfig {
        max_preemptions: Some(2),
        max_schedules: 10_000,
        ..ExploreConfig::default()
    };
    let report = explore_pool_buggy(2, || vec![1u64, 2], |_, t: u64| t, &cfg);
    let (schedule, reason) = report
        .deadlock
        .expect("the resurrected double-deque-lock bug must deadlock under some interleaving");
    assert!(
        schedule < 10_000,
        "found only at schedule {schedule}, beyond the ISSUE budget"
    );
    match reason {
        AbortReason::Deadlock(desc) => {
            assert!(
                desc.contains("lock"),
                "report should name the contended locks: {desc}"
            );
        }
        other => panic!("expected a deadlock abort, got {other:?}"),
    }
}

//! Exhaustive small-fixture exploration: every pool interleaving and every
//! message delivery order of the fixtures must produce bit-identical
//! results and no deadlock. These are the schedules a lifetime of plain
//! `cargo test` runs would never visit.

use std::time::Duration;

use tricount_mc::{explore_delivery, explore_pool, ExploreConfig};

fn square_tasks(n: usize) -> Vec<u64> {
    (0..n as u64).map(|i| i + 1).collect()
}

#[test]
fn pool_two_workers_exhaustive() {
    let cfg = ExploreConfig::default();
    let report = explore_pool(2, || square_tasks(4), |_, t: u64| t * t, &cfg);
    assert!(report.passed(), "{report:?}");
    assert!(
        report.schedules > 1,
        "expected multiple interleavings, got {}",
        report.schedules
    );
}

#[test]
fn pool_three_workers_exhaustive() {
    let cfg = ExploreConfig {
        max_preemptions: Some(1),
        max_schedules: 20_000,
        ..ExploreConfig::default()
    };
    let report = explore_pool(3, || square_tasks(3), |_, t: u64| t.wrapping_mul(7), &cfg);
    assert!(report.passed(), "{report:?}");
    assert!(report.schedules > 1);
}

/// The rank program every delivery fixture runs: all-to-all point-to-point
/// with an order-independent reduction, so any delivery order must yield
/// the same per-rank value.
fn exchange(ctx: &mut tricount_comm::Ctx) -> u64 {
    let p = ctx.num_ranks();
    let me = ctx.rank();
    for to in 0..p {
        if to != me {
            ctx.send_raw(to, vec![(me * 1000 + to) as u64, 7]);
        }
    }
    let mut acc = 0u64;
    let mut got = 0;
    while got < p - 1 {
        if let Some(m) = ctx.try_recv_raw() {
            acc = acc.wrapping_add(m.words[0].wrapping_mul(m.src as u64 + 1));
            got += 1;
        }
    }
    acc
}

#[test]
fn delivery_single_rank_trivially_exhausts() {
    let report = explore_delivery(1, exchange, 100, Duration::from_secs(5));
    assert!(report.passed(), "{report:?}");
    assert_eq!(report.schedules, 1, "p=1 has exactly one delivery order");
}

#[test]
fn delivery_four_ranks_orders_agree() {
    let report = explore_delivery(4, exchange, 400, Duration::from_secs(5));
    assert!(report.passed(), "{report:?}");
    assert!(
        report.schedules > 1,
        "expected multiple delivery orders, got {}",
        report.schedules
    );
}

//! A from-scratch work-stealing task pool — the reproduction's stand-in for
//! the Intel TBB task scheduler the paper's hybrid mode uses (§IV-D).
//!
//! The hybrid variant of the paper parallelises the *local phase* over the
//! edge list ("edge-centric parallelisation", after Green et al.) and runs
//! the global phase with MPI's *funneled* threading model: worker threads
//! produce/consume set-intersection tasks while a single thread talks to the
//! network. [`Pool::run_tasks`] provides exactly the scheduling primitive
//! both need: a batch of tasks executed by `t` workers with work stealing,
//! with the executing worker recorded per task so callers can compute
//! per-worker work distributions (the modeled parallel time is the max over
//! workers).
//!
//! The deques are plain mutex-guarded `VecDeque`s (owner pops the front,
//! thieves pop the back). Tasks on the target workloads are whole-vertex
//! set intersections, so lock traffic is negligible against task cost and
//! the pool needs nothing beyond `std`.

#![warn(missing_docs)]

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The result of one task: which worker ran it and what it returned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskResult<R> {
    /// Index of the task in the submitted batch.
    pub task_index: usize,
    /// Worker that executed the task (0-based).
    pub worker: usize,
    /// The task's return value.
    pub result: R,
}

/// A work-stealing pool of a fixed number of workers. Threads are spawned
/// per batch (scoped), which keeps the pool trivially free of lifetime
/// hazards; on the target workloads batch sizes dwarf spawn cost.
#[derive(Debug, Clone, Copy)]
pub struct Pool {
    num_workers: usize,
}

impl Pool {
    /// Creates a pool with `num_workers ≥ 1` workers.
    pub fn new(num_workers: usize) -> Self {
        assert!(num_workers >= 1);
        Pool { num_workers }
    }

    /// Number of workers.
    pub fn num_workers(&self) -> usize {
        self.num_workers
    }

    /// Executes `f` on every task with work stealing and returns one
    /// [`TaskResult`] per task (sorted by task index).
    pub fn run_tasks<T, R, F>(&self, tasks: Vec<T>, f: F) -> Vec<TaskResult<R>>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let total = tasks.len();
        if total == 0 {
            return Vec::new();
        }
        if self.num_workers == 1 {
            return tasks
                .into_iter()
                .enumerate()
                .map(|(i, t)| TaskResult {
                    task_index: i,
                    worker: 0,
                    result: f(i, t),
                })
                .collect();
        }

        // Pre-distribute tasks round-robin; imbalance is corrected by
        // stealing from the victims' back ends.
        let n = self.num_workers;
        let mut deques: Vec<VecDeque<(usize, T)>> = (0..n).map(|_| VecDeque::new()).collect();
        for (i, t) in tasks.into_iter().enumerate() {
            deques[i % n].push_back((i, t));
        }
        let queues: Vec<Mutex<VecDeque<(usize, T)>>> = deques.into_iter().map(Mutex::new).collect();
        let remaining = AtomicUsize::new(total);

        let mut partials: Vec<Vec<TaskResult<R>>> = Vec::with_capacity(n);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n);
            for wid in 0..n {
                let queues = &queues;
                let remaining = &remaining;
                let f = &f;
                handles.push(scope.spawn(move || {
                    let mut out: Vec<TaskResult<R>> = Vec::new();
                    loop {
                        // Own deque front, then steal from peers' backs. The
                        // own-deque pop must be a separate statement: chaining
                        // `.or_else` onto it keeps the own-lock guard alive
                        // through the steal attempts (temporaries live to the
                        // end of the statement), and n workers holding their
                        // own lock while locking a peer's is a lock cycle —
                        // every batch ends with all workers in the steal path.
                        let own = queues[wid]
                            .lock()
                            .expect("worker deque poisoned")
                            .pop_front();
                        let job = own.or_else(|| {
                            (1..n).find_map(|off| {
                                queues[(wid + off) % n]
                                    .lock()
                                    .expect("worker deque poisoned")
                                    .pop_back()
                            })
                        });
                        match job {
                            Some((idx, task)) => {
                                let result = f(idx, task);
                                out.push(TaskResult {
                                    task_index: idx,
                                    worker: wid,
                                    result,
                                });
                                remaining.fetch_sub(1, Ordering::AcqRel);
                            }
                            None => {
                                if remaining.load(Ordering::Acquire) == 0 {
                                    break;
                                }
                                std::thread::yield_now();
                            }
                        }
                    }
                    out
                }));
            }
            for h in handles {
                partials.push(h.join().expect("worker panicked"));
            }
        });

        let mut all: Vec<TaskResult<R>> = partials.into_iter().flatten().collect();
        all.sort_by_key(|r| r.task_index);
        all
    }

    /// Map-reduce over tasks: applies `map` with stealing, folds the results
    /// with `reduce` starting from `init`. Returns the folded value and the
    /// per-worker count of tasks executed (the load distribution).
    pub fn map_reduce<T, R, A, FM, FR>(
        &self,
        tasks: Vec<T>,
        map: FM,
        init: A,
        reduce: FR,
    ) -> (A, Vec<usize>)
    where
        T: Send,
        R: Send,
        FM: Fn(usize, T) -> R + Sync,
        FR: Fn(A, R) -> A,
    {
        let results = self.run_tasks(tasks, map);
        let mut loads = vec![0usize; self.num_workers];
        let mut acc = init;
        for r in results {
            loads[r.worker] += 1;
            acc = reduce(acc, r.result);
        }
        (acc, loads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_tasks_run_exactly_once() {
        let pool = Pool::new(4);
        let results = pool.run_tasks((0..1000u64).collect(), |_i, x| x * 2);
        assert_eq!(results.len(), 1000);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.task_index, i);
            assert_eq!(r.result, 2 * i as u64);
            assert!(r.worker < 4);
        }
    }

    #[test]
    fn single_worker_is_sequential() {
        let pool = Pool::new(1);
        let results = pool.run_tasks(vec![1u32, 2, 3], |_i, x| x + 10);
        assert!(results.iter().all(|r| r.worker == 0));
        assert_eq!(
            results.iter().map(|r| r.result).collect::<Vec<_>>(),
            vec![11, 12, 13]
        );
    }

    #[test]
    fn empty_batch() {
        let pool = Pool::new(3);
        let results: Vec<TaskResult<u32>> = pool.run_tasks(Vec::<u32>::new(), |_i, x| x);
        assert!(results.is_empty());
    }

    #[test]
    fn map_reduce_sums() {
        let pool = Pool::new(4);
        let (sum, loads) = pool.map_reduce((1..=100u64).collect(), |_i, x| x, 0u64, |a, b| a + b);
        assert_eq!(sum, 5050);
        assert_eq!(loads.iter().sum::<usize>(), 100);
    }

    #[test]
    fn uneven_tasks_complete() {
        // a few heavy tasks among many light ones — all must finish
        let pool = Pool::new(4);
        let tasks: Vec<u64> = (0..64)
            .map(|i| if i % 16 == 0 { 200_000 } else { 10 })
            .collect();
        let results = pool.run_tasks(tasks, |_i, work| {
            let mut acc = 0u64;
            for k in 0..work {
                acc = acc.wrapping_add(k ^ (acc << 1));
            }
            acc
        });
        assert_eq!(results.len(), 64);
    }

    #[test]
    fn drained_batches_terminate() {
        // Regression: every batch ends with all workers in the steal path at
        // once; the pool must never hold its own deque lock while locking a
        // peer's (lock cycle → deadlock). Many tiny batches maximise
        // end-of-batch contention.
        for workers in [2usize, 4, 8] {
            let pool = Pool::new(workers);
            for round in 0..200u64 {
                let tasks: Vec<u64> = (0..workers as u64 + round % 3).collect();
                let results = pool.run_tasks(tasks, |_i, x| x);
                assert_eq!(results.len(), workers + (round % 3) as usize);
            }
        }
    }

    #[test]
    fn deterministic_result_values() {
        let pool = Pool::new(4);
        let a: Vec<u64> = pool
            .run_tasks((0..500u64).collect(), |i, x| x * 3 + i as u64)
            .into_iter()
            .map(|r| r.result)
            .collect();
        let b: Vec<u64> = pool
            .run_tasks((0..500u64).collect(), |i, x| x * 3 + i as u64)
            .into_iter()
            .map(|r| r.result)
            .collect();
        assert_eq!(a, b);
    }
}

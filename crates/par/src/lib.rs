//! A from-scratch work-stealing task pool — the reproduction's stand-in for
//! the Intel TBB task scheduler the paper's hybrid mode uses (§IV-D).
//!
//! The hybrid variant of the paper parallelises the *local phase* over the
//! edge list ("edge-centric parallelisation", after Green et al.) and runs
//! the global phase with MPI's *funneled* threading model: worker threads
//! produce/consume set-intersection tasks while a single thread talks to the
//! network. [`Pool::run_tasks`] provides exactly the scheduling primitive
//! both need: a batch of tasks executed by `t` workers with work stealing,
//! with the executing worker recorded per task so callers can compute
//! per-worker work distributions (the modeled parallel time is the max over
//! workers).
//!
//! The deques are plain mutex-guarded `VecDeque`s (owner pops the front,
//! thieves pop the back). Tasks on the target workloads are whole-vertex
//! set intersections, so lock traffic is negligible against task cost and
//! the pool needs nothing beyond `std`.

#![warn(missing_docs)]

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// The result of one task: which worker ran it and what it returned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskResult<R> {
    /// Index of the task in the submitted batch.
    pub task_index: usize,
    /// Worker that executed the task (0-based).
    pub worker: usize,
    /// The task's return value.
    pub result: R,
}

/// One worker's scheduling counters for a batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Tasks this worker executed.
    pub executed: u64,
    /// Steal probes into peers' deques (each locked peer counts once).
    pub steals_attempted: u64,
    /// Probes that came back with a task.
    pub steals_succeeded: u64,
}

impl WorkerStats {
    /// Folds another worker's counters into this one.
    pub fn absorb(&mut self, other: &WorkerStats) {
        self.executed += other.executed;
        self.steals_attempted += other.steals_attempted;
        self.steals_succeeded += other.steals_succeeded;
    }
}

/// One task's execution interval, in wall nanoseconds from the batch start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskSpan {
    /// Index of the task in the submitted batch.
    pub task_index: usize,
    /// Worker that executed the task.
    pub worker: usize,
    /// Start of execution.
    pub begin_nanos: u64,
    /// End of execution.
    pub end_nanos: u64,
}

/// Scheduling observability for one batch: per-worker counters plus the
/// per-task execution spans (sorted by task index).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Counters per worker, indexed by worker id.
    pub workers: Vec<WorkerStats>,
    /// Execution span of every task.
    pub task_spans: Vec<TaskSpan>,
}

impl PoolStats {
    /// Total tasks executed across workers.
    pub fn tasks_executed(&self) -> u64 {
        self.workers.iter().map(|w| w.executed).sum()
    }

    /// Total steal probes across workers.
    pub fn steals_attempted(&self) -> u64 {
        self.workers.iter().map(|w| w.steals_attempted).sum()
    }

    /// Total successful steals across workers.
    pub fn steals_succeeded(&self) -> u64 {
        self.workers.iter().map(|w| w.steals_succeeded).sum()
    }
}

/// A work-stealing pool of a fixed number of workers. Threads are spawned
/// per batch (scoped), which keeps the pool trivially free of lifetime
/// hazards; on the target workloads batch sizes dwarf spawn cost.
#[derive(Debug, Clone, Copy)]
pub struct Pool {
    num_workers: usize,
}

impl Pool {
    /// Creates a pool with `num_workers ≥ 1` workers.
    pub fn new(num_workers: usize) -> Self {
        assert!(num_workers >= 1);
        Pool { num_workers }
    }

    /// Number of workers.
    pub fn num_workers(&self) -> usize {
        self.num_workers
    }

    /// Executes `f` on every task with work stealing and returns one
    /// [`TaskResult`] per task (sorted by task index).
    pub fn run_tasks<T, R, F>(&self, tasks: Vec<T>, f: F) -> Vec<TaskResult<R>>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        self.run_tasks_stats(tasks, f).0
    }

    /// Like [`Pool::run_tasks`], but also returns the batch's [`PoolStats`]:
    /// per-worker executed/steal counters and per-task execution spans
    /// (wall nanoseconds from the batch start). The counters are recorded
    /// in worker-local state and merged after the join, so observing a
    /// batch costs two `Instant::now()` reads per task and nothing in
    /// synchronisation.
    pub fn run_tasks_stats<T, R, F>(&self, tasks: Vec<T>, f: F) -> (Vec<TaskResult<R>>, PoolStats)
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let total = tasks.len();
        let mut stats = PoolStats {
            workers: vec![WorkerStats::default(); self.num_workers],
            task_spans: Vec::with_capacity(total),
        };
        if total == 0 {
            return (Vec::new(), stats);
        }
        let epoch = Instant::now();
        if self.num_workers == 1 {
            let results = tasks
                .into_iter()
                .enumerate()
                .map(|(i, t)| {
                    let begin = epoch.elapsed().as_nanos() as u64;
                    let result = f(i, t);
                    stats.task_spans.push(TaskSpan {
                        task_index: i,
                        worker: 0,
                        begin_nanos: begin,
                        end_nanos: epoch.elapsed().as_nanos() as u64,
                    });
                    TaskResult {
                        task_index: i,
                        worker: 0,
                        result,
                    }
                })
                .collect();
            stats.workers[0].executed = total as u64;
            return (results, stats);
        }

        // Pre-distribute tasks round-robin; imbalance is corrected by
        // stealing from the victims' back ends.
        let n = self.num_workers;
        let mut deques: Vec<VecDeque<(usize, T)>> = (0..n).map(|_| VecDeque::new()).collect();
        for (i, t) in tasks.into_iter().enumerate() {
            deques[i % n].push_back((i, t));
        }
        let queues: Vec<Mutex<VecDeque<(usize, T)>>> = deques.into_iter().map(Mutex::new).collect();
        let remaining = AtomicUsize::new(total);

        type WorkerOutcome<R> = (Vec<TaskResult<R>>, WorkerStats, Vec<TaskSpan>);
        let mut partials: Vec<WorkerOutcome<R>> = Vec::with_capacity(n);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n);
            for wid in 0..n {
                let queues = &queues;
                let remaining = &remaining;
                let f = &f;
                handles.push(scope.spawn(move || {
                    let mut out: Vec<TaskResult<R>> = Vec::new();
                    let mut ws = WorkerStats::default();
                    let mut spans: Vec<TaskSpan> = Vec::new();
                    loop {
                        // Own deque front, then steal from peers' backs. The
                        // own-deque pop must be a separate statement: chaining
                        // `.or_else` onto it keeps the own-lock guard alive
                        // through the steal attempts (temporaries live to the
                        // end of the statement), and n workers holding their
                        // own lock while locking a peer's is a lock cycle —
                        // every batch ends with all workers in the steal path.
                        let own = queues[wid]
                            .lock()
                            .expect("worker deque poisoned")
                            .pop_front();
                        let job = own.or_else(|| {
                            (1..n).find_map(|off| {
                                ws.steals_attempted += 1;
                                let stolen = queues[(wid + off) % n]
                                    .lock()
                                    .expect("worker deque poisoned")
                                    .pop_back();
                                if stolen.is_some() {
                                    ws.steals_succeeded += 1;
                                }
                                stolen
                            })
                        });
                        match job {
                            Some((idx, task)) => {
                                let begin = epoch.elapsed().as_nanos() as u64;
                                let result = f(idx, task);
                                spans.push(TaskSpan {
                                    task_index: idx,
                                    worker: wid,
                                    begin_nanos: begin,
                                    end_nanos: epoch.elapsed().as_nanos() as u64,
                                });
                                ws.executed += 1;
                                out.push(TaskResult {
                                    task_index: idx,
                                    worker: wid,
                                    result,
                                });
                                remaining.fetch_sub(1, Ordering::AcqRel);
                            }
                            None => {
                                if remaining.load(Ordering::Acquire) == 0 {
                                    break;
                                }
                                std::thread::yield_now();
                            }
                        }
                    }
                    (out, ws, spans)
                }));
            }
            for h in handles {
                partials.push(h.join().expect("worker panicked"));
            }
        });

        let mut all: Vec<TaskResult<R>> = Vec::with_capacity(total);
        for (wid, (out, ws, spans)) in partials.into_iter().enumerate() {
            all.extend(out);
            stats.workers[wid] = ws;
            stats.task_spans.extend(spans);
        }
        all.sort_by_key(|r| r.task_index);
        stats.task_spans.sort_by_key(|s| s.task_index);
        (all, stats)
    }

    /// Map-reduce over tasks: applies `map` with stealing, folds the results
    /// with `reduce` starting from `init`. Returns the folded value and the
    /// per-worker count of tasks executed (the load distribution).
    pub fn map_reduce<T, R, A, FM, FR>(
        &self,
        tasks: Vec<T>,
        map: FM,
        init: A,
        reduce: FR,
    ) -> (A, Vec<usize>)
    where
        T: Send,
        R: Send,
        FM: Fn(usize, T) -> R + Sync,
        FR: Fn(A, R) -> A,
    {
        let results = self.run_tasks(tasks, map);
        let mut loads = vec![0usize; self.num_workers];
        let mut acc = init;
        for r in results {
            loads[r.worker] += 1;
            acc = reduce(acc, r.result);
        }
        (acc, loads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_tasks_run_exactly_once() {
        let pool = Pool::new(4);
        let results = pool.run_tasks((0..1000u64).collect(), |_i, x| x * 2);
        assert_eq!(results.len(), 1000);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.task_index, i);
            assert_eq!(r.result, 2 * i as u64);
            assert!(r.worker < 4);
        }
    }

    #[test]
    fn single_worker_is_sequential() {
        let pool = Pool::new(1);
        let results = pool.run_tasks(vec![1u32, 2, 3], |_i, x| x + 10);
        assert!(results.iter().all(|r| r.worker == 0));
        assert_eq!(
            results.iter().map(|r| r.result).collect::<Vec<_>>(),
            vec![11, 12, 13]
        );
    }

    #[test]
    fn empty_batch() {
        let pool = Pool::new(3);
        let results: Vec<TaskResult<u32>> = pool.run_tasks(Vec::<u32>::new(), |_i, x| x);
        assert!(results.is_empty());
    }

    #[test]
    fn map_reduce_sums() {
        let pool = Pool::new(4);
        let (sum, loads) = pool.map_reduce((1..=100u64).collect(), |_i, x| x, 0u64, |a, b| a + b);
        assert_eq!(sum, 5050);
        assert_eq!(loads.iter().sum::<usize>(), 100);
    }

    #[test]
    fn uneven_tasks_complete() {
        // a few heavy tasks among many light ones — all must finish
        let pool = Pool::new(4);
        let tasks: Vec<u64> = (0..64)
            .map(|i| if i % 16 == 0 { 200_000 } else { 10 })
            .collect();
        let results = pool.run_tasks(tasks, |_i, work| {
            let mut acc = 0u64;
            for k in 0..work {
                acc = acc.wrapping_add(k ^ (acc << 1));
            }
            acc
        });
        assert_eq!(results.len(), 64);
    }

    #[test]
    fn drained_batches_terminate() {
        // Regression: every batch ends with all workers in the steal path at
        // once; the pool must never hold its own deque lock while locking a
        // peer's (lock cycle → deadlock). Many tiny batches maximise
        // end-of-batch contention.
        for workers in [2usize, 4, 8] {
            let pool = Pool::new(workers);
            for round in 0..200u64 {
                let tasks: Vec<u64> = (0..workers as u64 + round % 3).collect();
                let results = pool.run_tasks(tasks, |_i, x| x);
                assert_eq!(results.len(), workers + (round % 3) as usize);
            }
        }
    }

    #[test]
    fn stats_account_for_every_task() {
        let pool = Pool::new(4);
        let (results, stats) = pool.run_tasks_stats((0..200u64).collect(), |_i, x| x + 1);
        assert_eq!(results.len(), 200);
        assert_eq!(stats.workers.len(), 4);
        assert_eq!(stats.tasks_executed(), 200);
        assert_eq!(stats.task_spans.len(), 200);
        assert!(stats.steals_succeeded() <= stats.steals_attempted());
        for (i, span) in stats.task_spans.iter().enumerate() {
            assert_eq!(span.task_index, i);
            assert!(span.end_nanos >= span.begin_nanos);
            assert!(span.worker < 4);
        }
        // executed counters agree with the per-result worker attribution
        let mut per_worker = [0u64; 4];
        for r in &results {
            per_worker[r.worker] += 1;
        }
        for (w, ws) in stats.workers.iter().enumerate() {
            assert_eq!(ws.executed, per_worker[w], "worker {w}");
        }
    }

    #[test]
    fn single_worker_stats() {
        let pool = Pool::new(1);
        let (_, stats) = pool.run_tasks_stats(vec![1u32, 2, 3], |_i, x| x);
        assert_eq!(stats.workers[0].executed, 3);
        assert_eq!(stats.steals_attempted(), 0);
        assert_eq!(stats.task_spans.len(), 3);
    }

    #[test]
    fn imbalanced_batch_records_steals() {
        // All heavy work lands on worker 0's deque (round-robin with
        // n tasks ≫ workers keeps everyone busy, so force imbalance by a
        // batch where one task dwarfs the rest): the idle workers must
        // probe peers. Steal *attempts* are guaranteed by the end-of-batch
        // drain even when every probe misses.
        let pool = Pool::new(4);
        let (_, stats) = pool.run_tasks_stats((0..4u64).collect(), |_i, x| {
            if x == 0 {
                let mut acc = 0u64;
                for k in 0..2_000_000u64 {
                    acc = acc.wrapping_add(k ^ (acc << 1));
                }
                acc
            } else {
                x
            }
        });
        assert!(stats.steals_attempted() > 0);
    }

    #[test]
    fn deterministic_result_values() {
        let pool = Pool::new(4);
        let a: Vec<u64> = pool
            .run_tasks((0..500u64).collect(), |i, x| x * 3 + i as u64)
            .into_iter()
            .map(|r| r.result)
            .collect();
        let b: Vec<u64> = pool
            .run_tasks((0..500u64).collect(), |i, x| x * 3 + i as u64)
            .into_iter()
            .map(|r| r.result)
            .collect();
        assert_eq!(a, b);
    }
}

//! A from-scratch work-stealing task pool — the reproduction's stand-in for
//! the Intel TBB task scheduler the paper's hybrid mode uses (§IV-D).
//!
//! The hybrid variant of the paper parallelises the *local phase* over the
//! edge list ("edge-centric parallelisation", after Green et al.) and runs
//! the global phase with MPI's *funneled* threading model: worker threads
//! produce/consume set-intersection tasks while a single thread talks to the
//! network. [`Pool::run_tasks`] provides exactly the scheduling primitive
//! both need: a batch of tasks executed by `t` workers with work stealing,
//! with the executing worker recorded per task so callers can compute
//! per-worker work distributions (the modeled parallel time is the max over
//! workers).
//!
//! The deques are plain mutex-guarded `VecDeque`s (owner pops the front,
//! thieves pop the back). Tasks on the target workloads are whole-vertex
//! set intersections, so lock traffic is negligible against task cost and
//! the pool needs nothing beyond `std`.

#![warn(missing_docs)]

pub mod probe;
pub mod sched;

pub use sched::{OsScheduler, Scheduler};

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

/// The result of one task: which worker ran it and what it returned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskResult<R> {
    /// Index of the task in the submitted batch.
    pub task_index: usize,
    /// Worker that executed the task (0-based).
    pub worker: usize,
    /// The task's return value.
    pub result: R,
}

/// One worker's scheduling counters for a batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Tasks this worker executed.
    pub executed: u64,
    /// Steal probes into peers' deques (each locked peer counts once).
    pub steals_attempted: u64,
    /// Probes that came back with a task.
    pub steals_succeeded: u64,
}

impl WorkerStats {
    /// Folds another worker's counters into this one.
    pub fn absorb(&mut self, other: &WorkerStats) {
        self.executed += other.executed;
        self.steals_attempted += other.steals_attempted;
        self.steals_succeeded += other.steals_succeeded;
    }
}

/// One task's execution interval, in wall nanoseconds from the batch start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskSpan {
    /// Index of the task in the submitted batch.
    pub task_index: usize,
    /// Worker that executed the task.
    pub worker: usize,
    /// Start of execution.
    pub begin_nanos: u64,
    /// End of execution.
    pub end_nanos: u64,
}

/// Scheduling observability for one batch: per-worker counters plus the
/// per-task execution spans (sorted by task index).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Counters per worker, indexed by worker id.
    pub workers: Vec<WorkerStats>,
    /// Execution span of every task.
    pub task_spans: Vec<TaskSpan>,
}

impl PoolStats {
    /// Total tasks executed across workers.
    pub fn tasks_executed(&self) -> u64 {
        self.workers.iter().map(|w| w.executed).sum()
    }

    /// Total steal probes across workers.
    pub fn steals_attempted(&self) -> u64 {
        self.workers.iter().map(|w| w.steals_attempted).sum()
    }

    /// Total successful steals across workers.
    pub fn steals_succeeded(&self) -> u64 {
        self.workers.iter().map(|w| w.steals_succeeded).sum()
    }
}

/// A work-stealing pool of a fixed number of workers. Threads are spawned
/// per batch (scoped), which keeps the pool trivially free of lifetime
/// hazards; on the target workloads batch sizes dwarf spawn cost.
#[derive(Debug, Clone, Copy)]
pub struct Pool {
    num_workers: usize,
}

impl Pool {
    /// Creates a pool with `num_workers ≥ 1` workers.
    pub fn new(num_workers: usize) -> Self {
        assert!(num_workers >= 1);
        Pool { num_workers }
    }

    /// Number of workers.
    pub fn num_workers(&self) -> usize {
        self.num_workers
    }

    /// Executes `f` on every task with work stealing and returns one
    /// [`TaskResult`] per task (sorted by task index).
    pub fn run_tasks<T, R, F>(&self, tasks: Vec<T>, f: F) -> Vec<TaskResult<R>>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        self.run_tasks_stats(tasks, f).0
    }

    /// Like [`Pool::run_tasks`], but also returns the batch's [`PoolStats`]:
    /// per-worker executed/steal counters and per-task execution spans
    /// (wall nanoseconds from the batch start). Counters live in a
    /// [`probe::BatchProbe`] (relaxed atomics) so in-flight batches are
    /// observable from outside — the comm watchdog reads them when it
    /// diagnoses a stall.
    pub fn run_tasks_stats<T, R, F>(&self, tasks: Vec<T>, f: F) -> (Vec<TaskResult<R>>, PoolStats)
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        self.run_tasks_sched(tasks, f, &OsScheduler)
    }

    /// Like [`Pool::run_tasks_stats`], but every scheduling decision —
    /// worker start/retire, deque lock acquire/release, idle spin — is
    /// routed through `sched` (see [`sched::Scheduler`] for the calling
    /// contract). With [`OsScheduler`] this is the production path; a model
    /// checker passes a controlling scheduler to serialise workers and
    /// enumerate interleavings.
    pub fn run_tasks_sched<T, R, F, S>(
        &self,
        tasks: Vec<T>,
        f: F,
        sched: &S,
    ) -> (Vec<TaskResult<R>>, PoolStats)
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
        S: Scheduler + ?Sized,
    {
        let total = tasks.len();
        let mut stats = PoolStats {
            workers: vec![WorkerStats::default(); self.num_workers],
            task_spans: Vec::with_capacity(total),
        };
        if total == 0 {
            return (Vec::new(), stats);
        }
        let epoch = Instant::now();
        let probe = probe::BatchProbe::register(self.num_workers);
        if self.num_workers == 1 {
            let results = tasks
                .into_iter()
                .enumerate()
                .map(|(i, t)| {
                    let begin = epoch.elapsed().as_nanos() as u64;
                    let result = f(i, t);
                    probe.task_executed(0);
                    stats.task_spans.push(TaskSpan {
                        task_index: i,
                        worker: 0,
                        begin_nanos: begin,
                        end_nanos: epoch.elapsed().as_nanos() as u64,
                    });
                    TaskResult {
                        task_index: i,
                        worker: 0,
                        result,
                    }
                })
                .collect();
            stats.workers[0].executed = total as u64;
            return (results, stats);
        }

        // Pre-distribute tasks round-robin; imbalance is corrected by
        // stealing from the victims' back ends.
        let n = self.num_workers;
        let mut deques: Vec<VecDeque<(usize, T)>> = (0..n).map(|_| VecDeque::new()).collect();
        for (i, t) in tasks.into_iter().enumerate() {
            deques[i % n].push_back((i, t));
        }
        let queues: Vec<Mutex<VecDeque<(usize, T)>>> = deques.into_iter().map(Mutex::new).collect();
        let remaining = AtomicUsize::new(total);

        type WorkerOutcome<R> = (Vec<TaskResult<R>>, Vec<TaskSpan>);
        let mut partials: Vec<WorkerOutcome<R>> = Vec::with_capacity(n);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n);
            for wid in 0..n {
                let queues = &queues;
                let remaining = &remaining;
                let f = &f;
                let probe = &probe;
                handles.push(scope.spawn(move || {
                    sched.actor_started(wid);
                    let mut out: Vec<TaskResult<R>> = Vec::new();
                    let mut spans: Vec<TaskSpan> = Vec::new();
                    loop {
                        // Own deque front, then steal from peers' backs. The
                        // own-deque pop must be a separate statement: chaining
                        // `.or_else` onto it keeps the own-lock guard alive
                        // through the steal attempts (temporaries live to the
                        // end of the statement), and n workers holding their
                        // own lock while locking a peer's is a lock cycle —
                        // every batch ends with all workers in the steal path.
                        // (`tricount-lint` rule TC-L002 rejects the chained
                        // shape; the model checker proves this one sound.)
                        sched.lock_acquire(wid, wid);
                        let own = queues[wid]
                            .lock()
                            .unwrap_or_else(PoisonError::into_inner)
                            .pop_front();
                        sched.lock_release(wid, wid);
                        let job = own.or_else(|| {
                            (1..n).find_map(|off| {
                                let victim = (wid + off) % n;
                                probe.steal_attempted(wid);
                                sched.lock_acquire(wid, victim);
                                let stolen = queues[victim]
                                    .lock()
                                    .unwrap_or_else(PoisonError::into_inner)
                                    .pop_back();
                                sched.lock_release(wid, victim);
                                if stolen.is_some() {
                                    probe.steal_succeeded(wid);
                                }
                                stolen
                            })
                        });
                        match job {
                            Some((idx, task)) => {
                                let begin = epoch.elapsed().as_nanos() as u64;
                                let result = f(idx, task);
                                spans.push(TaskSpan {
                                    task_index: idx,
                                    worker: wid,
                                    begin_nanos: begin,
                                    end_nanos: epoch.elapsed().as_nanos() as u64,
                                });
                                probe.task_executed(wid);
                                out.push(TaskResult {
                                    task_index: idx,
                                    worker: wid,
                                    result,
                                });
                                remaining.fetch_sub(1, Ordering::AcqRel);
                                sched.progress(wid);
                            }
                            None => {
                                if remaining.load(Ordering::Acquire) == 0 {
                                    break;
                                }
                                sched.yield_now(wid);
                            }
                        }
                    }
                    sched.actor_finished(wid);
                    (out, spans)
                }));
            }
            // Join everything before re-raising a worker panic: unwinding
            // out of the scope with threads still running would make the
            // scope's implicit join panic a second time (process abort). A
            // controlling scheduler aborts *all* actors by panic, so several
            // Errs at once is the norm, not the exception.
            let mut first_panic: Option<Box<dyn std::any::Any + Send>> = None;
            for h in handles {
                match h.join() {
                    Ok(part) => partials.push(part),
                    Err(payload) => {
                        partials.push((Vec::new(), Vec::new()));
                        if first_panic.is_none() {
                            first_panic = Some(payload);
                        }
                    }
                }
            }
            if let Some(payload) = first_panic {
                std::panic::resume_unwind(payload);
            }
        });

        let mut all: Vec<TaskResult<R>> = Vec::with_capacity(total);
        for (out, spans) in partials {
            all.extend(out);
            stats.task_spans.extend(spans);
        }
        stats.workers = probe.stats();
        all.sort_by_key(|r| r.task_index);
        stats.task_spans.sort_by_key(|s| s.task_index);
        (all, stats)
    }

    /// The pre-PR 2 fetch discipline, resurrected verbatim for model-checker
    /// regression tests: the own-deque guard is held across the steal
    /// attempts, so `n` idle workers form a lock cycle. Only compiled with
    /// the test-only `mc-regressions` feature; never call this outside a
    /// controlling scheduler — under the OS scheduler it really deadlocks.
    #[cfg(feature = "mc-regressions")]
    pub fn run_tasks_buggy_sched<T, R, F, S>(
        &self,
        tasks: Vec<T>,
        f: F,
        sched: &S,
    ) -> Vec<TaskResult<R>>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
        S: Scheduler + ?Sized,
    {
        let total = tasks.len();
        let n = self.num_workers;
        assert!(n >= 2, "the buggy steal path needs at least two workers");
        if total == 0 {
            return Vec::new();
        }
        let mut deques: Vec<VecDeque<(usize, T)>> = (0..n).map(|_| VecDeque::new()).collect();
        for (i, t) in tasks.into_iter().enumerate() {
            deques[i % n].push_back((i, t));
        }
        let queues: Vec<Mutex<VecDeque<(usize, T)>>> = deques.into_iter().map(Mutex::new).collect();
        let remaining = AtomicUsize::new(total);

        let mut partials: Vec<Vec<TaskResult<R>>> = Vec::with_capacity(n);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n);
            for wid in 0..n {
                let queues = &queues;
                let remaining = &remaining;
                let f = &f;
                handles.push(scope.spawn(move || {
                    sched.actor_started(wid);
                    let mut out: Vec<TaskResult<R>> = Vec::new();
                    loop {
                        // BUG (intentional): one chained statement keeps the
                        // own-deque guard alive through the steal attempts.
                        sched.lock_acquire(wid, wid);
                        let job = queues[wid]
                            .lock() // lint: allow(TC-L002)
                            .unwrap_or_else(PoisonError::into_inner)
                            .pop_front()
                            .or_else(|| {
                                (1..n).find_map(|off| {
                                    let victim = (wid + off) % n;
                                    sched.lock_acquire(wid, victim);
                                    let stolen = queues[victim]
                                        .lock() // lint: allow(TC-L002)
                                        .unwrap_or_else(PoisonError::into_inner)
                                        .pop_back();
                                    sched.lock_release(wid, victim);
                                    stolen
                                })
                            });
                        sched.lock_release(wid, wid);
                        match job {
                            Some((idx, task)) => {
                                let result = f(idx, task);
                                out.push(TaskResult {
                                    task_index: idx,
                                    worker: wid,
                                    result,
                                });
                                remaining.fetch_sub(1, Ordering::AcqRel);
                                sched.progress(wid);
                            }
                            None => {
                                if remaining.load(Ordering::Acquire) == 0 {
                                    break;
                                }
                                sched.yield_now(wid);
                            }
                        }
                    }
                    sched.actor_finished(wid);
                    out
                }));
            }
            let mut first_panic: Option<Box<dyn std::any::Any + Send>> = None;
            for h in handles {
                match h.join() {
                    Ok(part) => partials.push(part),
                    Err(payload) => {
                        if first_panic.is_none() {
                            first_panic = Some(payload);
                        }
                    }
                }
            }
            if let Some(payload) = first_panic {
                std::panic::resume_unwind(payload);
            }
        });

        let mut all: Vec<TaskResult<R>> = Vec::with_capacity(total);
        for out in partials {
            all.extend(out);
        }
        all.sort_by_key(|r| r.task_index);
        all
    }

    /// Map-reduce over tasks: applies `map` with stealing, folds the results
    /// with `reduce` starting from `init`. Returns the folded value and the
    /// per-worker count of tasks executed (the load distribution).
    pub fn map_reduce<T, R, A, FM, FR>(
        &self,
        tasks: Vec<T>,
        map: FM,
        init: A,
        reduce: FR,
    ) -> (A, Vec<usize>)
    where
        T: Send,
        R: Send,
        FM: Fn(usize, T) -> R + Sync,
        FR: Fn(A, R) -> A,
    {
        let results = self.run_tasks(tasks, map);
        let mut loads = vec![0usize; self.num_workers];
        let mut acc = init;
        for r in results {
            loads[r.worker] += 1;
            acc = reduce(acc, r.result);
        }
        (acc, loads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_tasks_run_exactly_once() {
        let pool = Pool::new(4);
        let results = pool.run_tasks((0..1000u64).collect(), |_i, x| x * 2);
        assert_eq!(results.len(), 1000);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.task_index, i);
            assert_eq!(r.result, 2 * i as u64);
            assert!(r.worker < 4);
        }
    }

    #[test]
    fn single_worker_is_sequential() {
        let pool = Pool::new(1);
        let results = pool.run_tasks(vec![1u32, 2, 3], |_i, x| x + 10);
        assert!(results.iter().all(|r| r.worker == 0));
        assert_eq!(
            results.iter().map(|r| r.result).collect::<Vec<_>>(),
            vec![11, 12, 13]
        );
    }

    #[test]
    fn empty_batch() {
        let pool = Pool::new(3);
        let results: Vec<TaskResult<u32>> = pool.run_tasks(Vec::<u32>::new(), |_i, x| x);
        assert!(results.is_empty());
    }

    #[test]
    fn map_reduce_sums() {
        let pool = Pool::new(4);
        let (sum, loads) = pool.map_reduce((1..=100u64).collect(), |_i, x| x, 0u64, |a, b| a + b);
        assert_eq!(sum, 5050);
        assert_eq!(loads.iter().sum::<usize>(), 100);
    }

    #[test]
    fn uneven_tasks_complete() {
        // a few heavy tasks among many light ones — all must finish
        let pool = Pool::new(4);
        let tasks: Vec<u64> = (0..64)
            .map(|i| if i % 16 == 0 { 200_000 } else { 10 })
            .collect();
        let results = pool.run_tasks(tasks, |_i, work| {
            let mut acc = 0u64;
            for k in 0..work {
                acc = acc.wrapping_add(k ^ (acc << 1));
            }
            acc
        });
        assert_eq!(results.len(), 64);
    }

    #[test]
    fn drained_batches_terminate() {
        // Regression: every batch ends with all workers in the steal path at
        // once; the pool must never hold its own deque lock while locking a
        // peer's (lock cycle → deadlock). Many tiny batches maximise
        // end-of-batch contention.
        for workers in [2usize, 4, 8] {
            let pool = Pool::new(workers);
            for round in 0..200u64 {
                let tasks: Vec<u64> = (0..workers as u64 + round % 3).collect();
                let results = pool.run_tasks(tasks, |_i, x| x);
                assert_eq!(results.len(), workers + (round % 3) as usize);
            }
        }
    }

    #[test]
    fn stats_account_for_every_task() {
        let pool = Pool::new(4);
        let (results, stats) = pool.run_tasks_stats((0..200u64).collect(), |_i, x| x + 1);
        assert_eq!(results.len(), 200);
        assert_eq!(stats.workers.len(), 4);
        assert_eq!(stats.tasks_executed(), 200);
        assert_eq!(stats.task_spans.len(), 200);
        assert!(stats.steals_succeeded() <= stats.steals_attempted());
        for (i, span) in stats.task_spans.iter().enumerate() {
            assert_eq!(span.task_index, i);
            assert!(span.end_nanos >= span.begin_nanos);
            assert!(span.worker < 4);
        }
        // executed counters agree with the per-result worker attribution
        let mut per_worker = [0u64; 4];
        for r in &results {
            per_worker[r.worker] += 1;
        }
        for (w, ws) in stats.workers.iter().enumerate() {
            assert_eq!(ws.executed, per_worker[w], "worker {w}");
        }
    }

    #[test]
    fn single_worker_stats() {
        let pool = Pool::new(1);
        let (_, stats) = pool.run_tasks_stats(vec![1u32, 2, 3], |_i, x| x);
        assert_eq!(stats.workers[0].executed, 3);
        assert_eq!(stats.steals_attempted(), 0);
        assert_eq!(stats.task_spans.len(), 3);
    }

    #[test]
    fn imbalanced_batch_records_steals() {
        // All heavy work lands on worker 0's deque (round-robin with
        // n tasks ≫ workers keeps everyone busy, so force imbalance by a
        // batch where one task dwarfs the rest): the idle workers must
        // probe peers. Steal *attempts* are guaranteed by the end-of-batch
        // drain even when every probe misses.
        let pool = Pool::new(4);
        let (_, stats) = pool.run_tasks_stats((0..4u64).collect(), |_i, x| {
            if x == 0 {
                let mut acc = 0u64;
                for k in 0..2_000_000u64 {
                    acc = acc.wrapping_add(k ^ (acc << 1));
                }
                acc
            } else {
                x
            }
        });
        assert!(stats.steals_attempted() > 0);
    }

    #[test]
    fn scheduler_hooks_are_balanced() {
        use std::sync::atomic::AtomicUsize;

        #[derive(Default)]
        struct CountingSched {
            started: AtomicUsize,
            finished: AtomicUsize,
            acquires: AtomicUsize,
            releases: AtomicUsize,
            progressed: AtomicUsize,
        }
        impl Scheduler for CountingSched {
            fn actor_started(&self, _actor: usize) {
                self.started.fetch_add(1, Ordering::Relaxed);
            }
            fn actor_finished(&self, _actor: usize) {
                self.finished.fetch_add(1, Ordering::Relaxed);
            }
            fn lock_acquire(&self, _actor: usize, _lock: usize) {
                self.acquires.fetch_add(1, Ordering::Relaxed);
            }
            fn lock_release(&self, _actor: usize, _lock: usize) {
                self.releases.fetch_add(1, Ordering::Relaxed);
            }
            fn progress(&self, _actor: usize) {
                self.progressed.fetch_add(1, Ordering::Relaxed);
            }
        }

        let pool = Pool::new(3);
        let s = CountingSched::default();
        let (results, stats) = pool.run_tasks_sched((0..50u64).collect(), |_i, x| x + 1, &s);
        assert_eq!(results.len(), 50);
        assert_eq!(stats.tasks_executed(), 50);
        assert_eq!(s.started.load(Ordering::Relaxed), 3);
        assert_eq!(s.finished.load(Ordering::Relaxed), 3);
        assert_eq!(s.progressed.load(Ordering::Relaxed), 50);
        assert_eq!(
            s.acquires.load(Ordering::Relaxed),
            s.releases.load(Ordering::Relaxed)
        );
        // Every fetch takes at least the own-deque lock once per task.
        assert!(s.acquires.load(Ordering::Relaxed) >= 50);
    }

    #[test]
    fn stats_visible_through_live_probe_registry() {
        // A finished batch's probe is pruned; counters while live equal the
        // final PoolStats (checked indirectly: totals conserved).
        let pool = Pool::new(2);
        let (_, stats) = pool.run_tasks_stats((0..40u64).collect(), |_i, x| x);
        assert_eq!(stats.tasks_executed(), 40);
    }

    #[test]
    fn deterministic_result_values() {
        let pool = Pool::new(4);
        let a: Vec<u64> = pool
            .run_tasks((0..500u64).collect(), |i, x| x * 3 + i as u64)
            .into_iter()
            .map(|r| r.result)
            .collect();
        let b: Vec<u64> = pool
            .run_tasks((0..500u64).collect(), |i, x| x * 3 + i as u64)
            .into_iter()
            .map(|r| r.result)
            .collect();
        assert_eq!(a, b);
    }
}

//! Live, concurrently-readable per-worker counters for in-flight pool
//! batches. The pool registers a [`BatchProbe`] for every batch it runs;
//! external observers (the comm watchdog's deadlock reporter) call
//! [`snapshot_live`] to see whether workers are still making progress and
//! how steal traffic is distributed — from outside the stalled threads.
//!
//! Registration is a global `Weak` list: when a batch finishes the pool
//! drops its `Arc` and the entry dies; readers and registrars prune dead
//! entries opportunistically, so the list never grows beyond the number of
//! concurrently live batches plus recently finished ones.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError, Weak};

use crate::WorkerStats;

/// Live counters for one in-flight batch, one cell set per worker.
#[derive(Debug)]
pub struct BatchProbe {
    workers: Vec<WorkerCells>,
}

#[derive(Debug, Default)]
struct WorkerCells {
    executed: AtomicU64,
    steals_attempted: AtomicU64,
    steals_succeeded: AtomicU64,
}

static REGISTRY: Mutex<Vec<Weak<BatchProbe>>> = Mutex::new(Vec::new());

impl BatchProbe {
    /// Creates a probe for `workers` workers and registers it for
    /// [`snapshot_live`] readers. Deregistration is implicit: the entry dies
    /// when the pool drops the returned `Arc` at the end of the batch.
    pub fn register(workers: usize) -> Arc<BatchProbe> {
        let probe = Arc::new(BatchProbe {
            workers: (0..workers).map(|_| WorkerCells::default()).collect(),
        });
        let mut reg = REGISTRY.lock().unwrap_or_else(PoisonError::into_inner);
        reg.retain(|w| w.strong_count() > 0);
        reg.push(Arc::downgrade(&probe));
        probe
    }

    /// Records one executed task by `worker`.
    pub fn task_executed(&self, worker: usize) {
        self.workers[worker]
            .executed
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Records one steal probe by `worker`.
    pub fn steal_attempted(&self, worker: usize) {
        self.workers[worker]
            .steals_attempted
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Records one successful steal by `worker`.
    pub fn steal_succeeded(&self, worker: usize) {
        self.workers[worker]
            .steals_succeeded
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Current counters, one [`WorkerStats`] per worker.
    pub fn stats(&self) -> Vec<WorkerStats> {
        self.workers
            .iter()
            .map(|c| WorkerStats {
                executed: c.executed.load(Ordering::Relaxed),
                steals_attempted: c.steals_attempted.load(Ordering::Relaxed),
                steals_succeeded: c.steals_succeeded.load(Ordering::Relaxed),
            })
            .collect()
    }
}

/// Snapshots every live (in-flight) batch: one `Vec<WorkerStats>` per batch,
/// indexed by worker. Finished batches are pruned as a side effect.
pub fn snapshot_live() -> Vec<Vec<WorkerStats>> {
    let mut reg = REGISTRY.lock().unwrap_or_else(PoisonError::into_inner);
    reg.retain(|w| w.strong_count() > 0);
    reg.iter()
        .filter_map(|w| w.upgrade())
        .map(|p| p.stats())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_counts_and_deregisters() {
        let probe = BatchProbe::register(2);
        probe.task_executed(0);
        probe.task_executed(0);
        probe.steal_attempted(1);
        probe.steal_succeeded(1);
        let live = snapshot_live();
        // Other tests may have concurrent batches; find ours.
        let ours = live
            .iter()
            .find(|b| b.len() == 2 && b[0].executed == 2)
            .expect("registered probe visible");
        assert_eq!(ours[1].steals_attempted, 1);
        assert_eq!(ours[1].steals_succeeded, 1);
        drop(probe);
        assert!(!snapshot_live()
            .iter()
            .any(|b| b.len() == 2 && b[0].executed == 2));
    }
}

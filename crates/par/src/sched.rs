//! Pluggable scheduling hooks: every decision the pool makes (which deque
//! lock to take, when to spin, when a worker retires) is routed through the
//! [`Scheduler`] trait so an external driver can serialise and enumerate
//! interleavings. Production code pays nothing: [`OsScheduler`]'s hooks are
//! empty inlinable defaults and the OS remains in charge.
//!
//! The contract, in the order a worker hits the hooks:
//!
//! 1. [`Scheduler::actor_started`] — once, before the worker's first fetch.
//!    A controlling scheduler may block here until the actor is picked, so
//!    the schedule is independent of OS thread-spawn timing.
//! 2. [`Scheduler::lock_acquire`] — immediately before locking deque `lock`.
//!    A controlling scheduler blocks until it grants the (virtual) lock;
//!    because it serialises actors, the real `Mutex` behind it is then
//!    uncontended and deadlock shows up as a virtual wait cycle instead of
//!    a hung process.
//! 3. [`Scheduler::lock_release`] — after the guard has been dropped.
//! 4. [`Scheduler::progress`] — after completing a unit of work (a task).
//! 5. [`Scheduler::yield_now`] — the worker found nothing to do but the
//!    batch is not finished. A controlling scheduler should block the actor
//!    until some other actor reports [`Scheduler::progress`], keeping the
//!    schedule space finite (an OS scheduler just yields the time slice).
//! 6. [`Scheduler::actor_finished`] — once, when the worker retires.
//!
//! Actor ids are worker indices; lock ids are deque (= worker) indices.

/// Scheduling-decision hooks for [`crate::Pool`] batches. See the module
/// docs for the calling contract.
pub trait Scheduler: Sync {
    /// The actor is about to start running. May block until scheduled.
    fn actor_started(&self, _actor: usize) {}
    /// The actor will not run again.
    fn actor_finished(&self, _actor: usize) {}
    /// The actor is about to lock deque `_lock`. Blocks until granted.
    fn lock_acquire(&self, _actor: usize, _lock: usize) {}
    /// The actor has dropped the guard for deque `_lock`.
    fn lock_release(&self, _actor: usize, _lock: usize) {}
    /// The actor completed a unit of work.
    fn progress(&self, _actor: usize) {}
    /// The actor has nothing to do but the batch is unfinished.
    fn yield_now(&self, _actor: usize) {
        std::thread::yield_now();
    }
}

/// The production scheduler: all hooks are no-ops and the operating system
/// schedules threads as usual.
#[derive(Debug, Clone, Copy, Default)]
pub struct OsScheduler;

impl Scheduler for OsScheduler {}

//! Command-line interface backing the `tricount` binary: graph generation,
//! triangle counting, LCC computation, enumeration and instance inspection
//! from the shell. Argument parsing is hand-rolled (no dependency) and unit
//! tested; the binary in `src/bin/tricount.rs` is a thin wrapper.

use tricount_comm::{CostModel, Routing, TransportKind};
use tricount_core::dist::{enumerate, lcc};
use tricount_core::{count_with, seq, Aggregation, Algorithm, DistConfig};
use tricount_gen::{Dataset, Family};
use tricount_graph::stats::{degree_histogram_log2, global_clustering_coefficient, GraphStats};
use tricount_graph::{io, Csr};

/// Where the input graph comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum Source {
    /// Load from a file (text edge list or `.bin`).
    File(String),
    /// Generate a synthetic family instance.
    Family {
        /// The family.
        family: Family,
        /// Number of vertices.
        n: u64,
        /// RNG seed.
        seed: u64,
    },
    /// Generate a Table-I proxy dataset.
    Dataset {
        /// The dataset.
        dataset: Dataset,
        /// Number of vertices.
        n: u64,
        /// RNG seed.
        seed: u64,
    },
}

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Generate a graph and write it to a file.
    Generate {
        /// Input source (must be a generator).
        source: Source,
        /// Output path (`.bin` → binary, else text).
        output: String,
    },
    /// Count triangles.
    Count {
        /// Input source.
        source: Source,
        /// Algorithm (`None` = sequential COMPACT-FORWARD).
        algorithm: Option<Algorithm>,
        /// Simulated PEs.
        p: usize,
        /// Cost model preset.
        model: CostModel,
        /// Config overrides.
        config: DistConfig,
        /// Run with the overlap-aware simulated clock and report the
        /// makespan.
        timed: bool,
        /// Probe calibration JSON (`tricount-pingpong` /
        /// `tricount-allgather` output) replacing the model's α/β.
        calibration: Option<String>,
        /// Remote-adjacency cache budget in words (`None` = cache off).
        cache_budget: Option<u64>,
    },
    /// Compute per-vertex counts / LCC and print the top-k.
    Lcc {
        /// Input source.
        source: Source,
        /// Simulated PEs.
        p: usize,
        /// How many extreme vertices to print.
        top: usize,
        /// Data plane carrying the run.
        transport: TransportKind,
        /// Remote-adjacency cache budget in words (`None` = cache off).
        cache_budget: Option<u64>,
    },
    /// Enumerate triangles.
    Enumerate {
        /// Input source.
        source: Source,
        /// Simulated PEs.
        p: usize,
        /// Print at most this many triples.
        limit: usize,
        /// Data plane carrying the run.
        transport: TransportKind,
    },
    /// Print instance statistics.
    Info {
        /// Input source.
        source: Source,
    },
    /// Load the graph into a resident query engine and drive a scripted
    /// mixed workload against it.
    Serve {
        /// Input source.
        source: Source,
        /// Simulated PEs.
        p: usize,
        /// Number of scripted queries to serve.
        queries: usize,
        /// Workload RNG seed.
        seed: u64,
        /// Print the machine-readable stats snapshot instead of the table.
        json: bool,
        /// Write the engine's Prometheus text exposition here after serving.
        metrics_out: Option<String>,
        /// Data plane carrying the engine's runs.
        transport: TransportKind,
        /// Remote-adjacency cache budget in words (`None` = cache off).
        cache_budget: Option<u64>,
        /// Serve this many tenants behind one `EngineHost` (1 = plain
        /// single-engine serving).
        tenants: usize,
        /// Interleave this many random update batches with the reads
        /// (host mode only).
        updates: usize,
        /// Background serve-loop workers in host mode.
        host_workers: usize,
    },
    /// Load the graph into a resident engine and stream batched edge
    /// updates through the incremental triangle-maintenance path.
    Update {
        /// Input source.
        source: Source,
        /// Simulated PEs.
        p: usize,
        /// Path to the update file (`+ u v` / `- u v` lines, blank lines
        /// separate batches).
        batch: String,
        /// Print the machine-readable stats snapshot after applying.
        json: bool,
        /// Data plane carrying the engine's runs.
        transport: TransportKind,
        /// Remote-adjacency cache budget in words (`None` = cache off).
        cache_budget: Option<u64>,
    },
    /// Run the concurrency checking suite: happens-before analysis and
    /// protocol conformance of a traced run, exhaustive pool-interleaving
    /// and delivery-order exploration, and (when run inside the
    /// workspace) the `tricount-lint` source pass.
    Check {
        /// Input source.
        source: Source,
        /// Distributed algorithm for the traced run.
        algorithm: Algorithm,
        /// Simulated PEs.
        p: usize,
        /// Workspace root to lint (`None` = skip the source pass).
        lint_root: Option<String>,
    },
    /// Run one traced, timed count and export its profile.
    Profile {
        /// Input source.
        source: Source,
        /// Distributed algorithm (`seq` is rejected — nothing to trace).
        algorithm: Algorithm,
        /// Simulated PEs.
        p: usize,
        /// Cost model preset.
        model: CostModel,
        /// Config overrides.
        config: DistConfig,
        /// Write a Chrome-trace / Perfetto JSON file here. On the threads
        /// transport this becomes a dual-clock export (modeled + measured).
        chrome_trace: Option<String>,
        /// Print the per-phase modeled/wall breakdown and span summary.
        phase_report: bool,
        /// Write the run's Prometheus text exposition here.
        metrics_out: Option<String>,
        /// Probe calibration JSON (`tricount-pingpong` /
        /// `tricount-allgather` output) replacing the model's α/β.
        calibration: Option<String>,
    },
}

fn parse_family(s: &str) -> Result<Family, String> {
    match s {
        "gnm" => Ok(Family::Gnm),
        "rgg2d" | "rgg" => Ok(Family::Rgg2d),
        "rhg" => Ok(Family::Rhg),
        "rmat" => Ok(Family::Rmat),
        _ => Err(format!("unknown family {s:?} (gnm|rgg2d|rhg|rmat)")),
    }
}

fn parse_dataset(s: &str) -> Result<Dataset, String> {
    Dataset::all()
        .into_iter()
        .find(|d| d.paper_stats().name == s)
        .ok_or_else(|| {
            let names: Vec<&str> = Dataset::all()
                .iter()
                .map(|d| d.paper_stats().name)
                .collect();
            format!("unknown dataset {s:?} (one of {names:?})")
        })
}

/// Applies the shared `--kernel` / `--pool-workers` overrides to a config's
/// kernel policy. `--pool-workers N` with `N > 1` also switches the
/// degree-aware chunked local phase on.
fn apply_kernel_opts(
    config: &mut DistConfig,
    kernel: Option<&str>,
    pool_workers: Option<&str>,
) -> Result<(), String> {
    if let Some(k) = kernel {
        config.kernels.kernel = tricount_graph::kernels::KernelChoice::parse(k)
            .ok_or_else(|| format!("unknown kernel {k:?} (auto|merge|gallop|binary|bitmap)"))?;
    }
    if let Some(w) = pool_workers {
        let workers: usize = w
            .parse()
            .map_err(|e| format!("bad --pool-workers {w:?}: {e}"))?;
        if workers == 0 {
            return Err("--pool-workers must be at least 1".to_string());
        }
        config.kernels.pool_workers = workers;
        config.kernels.chunking = workers > 1;
    }
    Ok(())
}

/// Extracts the first `"key":<number>` field from a JSON document — enough
/// to read the flat calibration reports of the probe binaries without a
/// JSON dependency.
fn json_number_field(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Replaces the preset model's α/β with the measured fit from a probe
/// calibration file (`tricount-pingpong` emits `alpha_seconds` +
/// `beta_seconds_per_word`; `tricount-allgather` emits
/// `alpha_log_seconds`). `t_op` keeps the preset's value — the probes
/// measure the transport, not the intersection kernels.
fn apply_calibration(base: CostModel, path: &str) -> Result<CostModel, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let alpha = json_number_field(&text, "alpha_seconds")
        .or_else(|| json_number_field(&text, "alpha_log_seconds"))
        .ok_or_else(|| {
            format!("{path}: no alpha_seconds / alpha_log_seconds field (not a probe calibration?)")
        })?;
    let beta = json_number_field(&text, "beta_seconds_per_word").unwrap_or(base.beta);
    Ok(CostModel::calibrated(alpha, beta, base.t_op))
}

/// Resolves which calibration file, if any, a run should apply. An explicit
/// `--calibration PATH` always wins; without one, `TRICOUNT_CALIBRATION`
/// (when set and non-empty) is consulted, and finally a `calibration.json`
/// sitting next to a `--input` graph file is picked up automatically — so a
/// probe fit saved beside the dataset feeds every later run without extra
/// flags.
fn resolve_calibration(explicit: Option<String>, source: &Source) -> Option<String> {
    if explicit.is_some() {
        return explicit;
    }
    if let Ok(path) = std::env::var("TRICOUNT_CALIBRATION") {
        if !path.is_empty() {
            return Some(path);
        }
    }
    if let Source::File(graph) = source {
        let sibling = std::path::Path::new(graph).with_file_name("calibration.json");
        if sibling.is_file() {
            return Some(sibling.to_string_lossy().into_owned());
        }
    }
    None
}

/// Parses the `--transport` override (absent = [`TransportKind::Sim`]).
fn parse_transport(s: Option<&str>) -> Result<TransportKind, String> {
    match s {
        None => Ok(TransportKind::Sim),
        Some(t) => {
            TransportKind::parse(t).ok_or_else(|| format!("unknown transport {t:?} (sim|threads)"))
        }
    }
}

fn parse_algorithm(s: &str) -> Result<Option<Algorithm>, String> {
    Ok(Some(match s {
        "seq" => return Ok(None),
        "ditric" => Algorithm::Ditric,
        "ditric2" => Algorithm::Ditric2,
        "cetric" => Algorithm::Cetric,
        "cetric2" => Algorithm::Cetric2,
        "tric" => Algorithm::TricLike,
        "havoqgt" => Algorithm::HavoqgtLike,
        "unagg" => Algorithm::Unaggregated,
        _ => {
            return Err(format!(
                "unknown algorithm {s:?} (seq|ditric|ditric2|cetric|cetric2|tric|havoqgt|unagg)"
            ))
        }
    }))
}

/// Parses a full argument list (without the binary name).
pub fn parse(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter();
    let verb = it.next().ok_or_else(usage)?;

    // collect --key value pairs
    let mut opts: Vec<(String, String)> = Vec::new();
    let rest: Vec<&String> = it.collect();
    let mut i = 0;
    while i < rest.len() {
        let key = rest[i];
        if !key.starts_with("--") && !key.starts_with('-') {
            return Err(format!("unexpected argument {key:?}"));
        }
        let val = rest
            .get(i + 1)
            .ok_or_else(|| format!("missing value for {key}"))?;
        opts.push((key.trim_start_matches('-').to_string(), val.to_string()));
        i += 2;
    }
    let get = |k: &str| {
        opts.iter()
            .find(|(key, _)| key == k)
            .map(|(_, v)| v.as_str())
    };
    let parse_u64 = |k: &str, default: u64| -> Result<u64, String> {
        get(k).map_or(Ok(default), |v| {
            v.parse().map_err(|e| format!("bad --{k} {v:?}: {e}"))
        })
    };
    let parse_opt_u64 = |k: &str| -> Result<Option<u64>, String> {
        get(k)
            .map(|v| v.parse().map_err(|e| format!("bad --{k} {v:?}: {e}")))
            .transpose()
    };

    let source = if let Some(path) = get("input") {
        Source::File(path.to_string())
    } else if let Some(fam) = get("family") {
        Source::Family {
            family: parse_family(fam)?,
            n: parse_u64("n", 1 << 12)?,
            seed: parse_u64("seed", 42)?,
        }
    } else if let Some(ds) = get("dataset") {
        Source::Dataset {
            dataset: parse_dataset(ds)?,
            n: parse_u64("n", 1 << 12)?,
            seed: parse_u64("seed", 42)?,
        }
    } else if verb == "generate"
        || verb == "count"
        || verb == "lcc"
        || verb == "info"
        || verb == "enumerate"
        || verb == "serve"
        || verb == "update"
        || verb == "profile"
        || verb == "check"
    {
        return Err("need an input: --input FILE, --family F, or --dataset D".to_string());
    } else {
        return Err(usage());
    };

    let p = parse_u64("p", 4)? as usize;
    match verb.as_str() {
        "generate" => {
            if matches!(source, Source::File(_)) {
                return Err("generate needs --family or --dataset, not --input".to_string());
            }
            Ok(Command::Generate {
                source,
                output: get("o")
                    .or(get("output"))
                    .ok_or("generate needs -o/--output PATH")?
                    .to_string(),
            })
        }
        "count" => {
            let algorithm = parse_algorithm(get("alg").unwrap_or("cetric"))?;
            let mut config = algorithm.map_or_else(DistConfig::default, |a| a.config());
            if let Some(r) = get("routing") {
                config.routing = match r {
                    "direct" => Routing::Direct,
                    "grid" => Routing::Grid,
                    _ => return Err(format!("unknown routing {r:?} (direct|grid)")),
                };
            }
            if let Some(f) = get("delta-factor") {
                let factor: f64 = f.parse().map_err(|e| format!("bad --delta-factor: {e}"))?;
                config.aggregation = Aggregation::Dynamic {
                    delta_factor: factor,
                };
            }
            apply_kernel_opts(&mut config, get("kernel"), get("pool-workers"))?;
            config.transport = parse_transport(get("transport"))?;
            let model = match get("model").unwrap_or("supermuc") {
                "supermuc" => CostModel::supermuc(),
                "cloud" => CostModel::cloud(),
                m => return Err(format!("unknown model {m:?} (supermuc|cloud)")),
            };
            Ok(Command::Count {
                source,
                algorithm,
                p,
                model,
                config,
                timed: get("timed").is_some_and(|v| v == "true" || v == "1"),
                calibration: get("calibration").map(|v| v.to_string()),
                cache_budget: parse_opt_u64("cache-budget")?,
            })
        }
        "lcc" => Ok(Command::Lcc {
            source,
            p,
            top: parse_u64("top", 10)? as usize,
            transport: parse_transport(get("transport"))?,
            cache_budget: parse_opt_u64("cache-budget")?,
        }),
        "enumerate" => Ok(Command::Enumerate {
            source,
            p,
            limit: parse_u64("limit", 20)? as usize,
            transport: parse_transport(get("transport"))?,
        }),
        "info" => Ok(Command::Info { source }),
        "serve" => Ok(Command::Serve {
            source,
            p,
            queries: parse_u64("queries", 100)? as usize,
            seed: parse_u64("workload-seed", 42)?,
            json: get("json").is_some_and(|v| v == "true" || v == "1"),
            metrics_out: get("metrics-out").map(|v| v.to_string()),
            transport: parse_transport(get("transport"))?,
            cache_budget: parse_opt_u64("cache-budget")?,
            tenants: (parse_u64("tenants", 1)? as usize).max(1),
            updates: parse_u64("updates", 0)? as usize,
            host_workers: (parse_u64("host-workers", 2)? as usize).max(1),
        }),
        "update" => Ok(Command::Update {
            source,
            p,
            batch: get("batch")
                .ok_or("update needs --batch FILE (`+ u v` / `- u v` lines)")?
                .to_string(),
            json: get("json").is_some_and(|v| v == "true" || v == "1"),
            transport: parse_transport(get("transport"))?,
            cache_budget: parse_opt_u64("cache-budget")?,
        }),
        "check" => {
            let algorithm = parse_algorithm(get("alg").unwrap_or("cetric"))?
                .ok_or("check needs a distributed algorithm (seq has no schedules to check)")?;
            // Default to linting the workspace we are running inside, if
            // this looks like one.
            let lint_root = get("lint-root").map(|v| v.to_string()).or_else(|| {
                std::path::Path::new("crates")
                    .is_dir()
                    .then(|| ".".to_string())
            });
            Ok(Command::Check {
                source,
                algorithm,
                p,
                lint_root,
            })
        }
        "profile" => {
            let algorithm = parse_algorithm(get("alg").unwrap_or("cetric"))?
                .ok_or("profile needs a distributed algorithm (seq records no trace)")?;
            let mut config = algorithm.config();
            if let Some(r) = get("routing") {
                config.routing = match r {
                    "direct" => Routing::Direct,
                    "grid" => Routing::Grid,
                    _ => return Err(format!("unknown routing {r:?} (direct|grid)")),
                };
            }
            apply_kernel_opts(&mut config, get("kernel"), get("pool-workers"))?;
            config.transport = parse_transport(get("transport"))?;
            let model = match get("model").unwrap_or("supermuc") {
                "supermuc" => CostModel::supermuc(),
                "cloud" => CostModel::cloud(),
                m => return Err(format!("unknown model {m:?} (supermuc|cloud)")),
            };
            Ok(Command::Profile {
                source,
                algorithm,
                p,
                model,
                config,
                chrome_trace: get("chrome-trace").map(|v| v.to_string()),
                phase_report: get("phase-report").is_some_and(|v| v == "true" || v == "1"),
                metrics_out: get("metrics-out").map(|v| v.to_string()),
                calibration: get("calibration").map(|v| v.to_string()),
            })
        }
        v => Err(format!("unknown command {v:?}\n{}", usage())),
    }
}

fn usage() -> String {
    "usage: tricount <generate|count|lcc|enumerate|info|serve|update|profile|check> \
     [--input FILE | --family gnm|rgg2d|rhg|rmat | --dataset NAME] \
     [--n N] [--seed S] [--p P] [--alg A] [--model supermuc|cloud] \
     [--routing direct|grid] [--delta-factor F] [--transport sim|threads] \
     [--kernel auto|merge|gallop|binary|bitmap] [--pool-workers N] \
     [--top K] [--limit K] \
     [--queries Q] [--workload-seed S] [--batch UPDATES.txt] [--json 1] \
     [--tenants N] [--updates U] [--host-workers W] \
     [--lint-root DIR] \
     [-o OUT] [--chrome-trace OUT.json] [--phase-report 1] \
     [--metrics-out OUT.prom] [--calibration PROBE.json] [--cache-budget WORDS]\n\
     calibration is auto-applied from $TRICOUNT_CALIBRATION or a \
     calibration.json next to --input"
        .to_string()
}

/// Materialises the input graph of a command.
pub fn load_source(source: &Source) -> Result<Csr, String> {
    match source {
        Source::File(path) => io::load_graph(path).map_err(|e| format!("loading {path:?}: {e}")),
        Source::Family { family, n, seed } => Ok(family.generate(*n, *seed)),
        Source::Dataset { dataset, n, seed } => Ok(dataset.generate(*n, *seed)),
    }
}

/// Executes a parsed command, printing results to stdout.
pub fn execute(cmd: Command) -> Result<(), String> {
    match cmd {
        Command::Generate { source, output } => {
            let g = load_source(&source)?;
            let f = std::fs::File::create(&output).map_err(|e| e.to_string())?;
            if output.ends_with(".bin") {
                io::write_binary(f, &g).map_err(|e| e.to_string())?;
            } else {
                io::write_text_edges(f, &g.to_edge_list()).map_err(|e| e.to_string())?;
            }
            println!(
                "wrote {} (n = {}, m = {})",
                output,
                g.num_vertices(),
                g.num_edges()
            );
        }
        Command::Count {
            source,
            algorithm,
            p,
            model,
            mut config,
            timed,
            calibration,
            cache_budget,
        } => {
            let model = match resolve_calibration(calibration, &source) {
                Some(path) => apply_calibration(model, &path)?,
                None => model,
            };
            let g = load_source(&source)?;
            match algorithm {
                None => {
                    let s = seq::compact_forward(&g);
                    println!("triangles: {} (sequential, {} ops)", s.triangles, s.ops);
                }
                Some(alg) => {
                    let r = if let Some(budget) = cache_budget {
                        use tricount_core::{CacheConfig, RankCache};
                        config.cache = CacheConfig::with_budget(budget);
                        let dg = tricount_graph::DistGraph::new_balanced_vertices(&g, p);
                        let caches: Vec<std::sync::Mutex<RankCache>> = (0..p)
                            .map(|_| {
                                std::sync::Mutex::new(RankCache::new(
                                    config.cache,
                                    p,
                                    config.memory_limit_words,
                                ))
                            })
                            .collect();
                        let opts = tricount_comm::SimOptions {
                            timing: timed.then_some(model),
                            ..tricount_comm::SimOptions::default()
                        };
                        let (r, _, cache) =
                            tricount_core::run_on_cached(dg, alg, &config, &opts, &caches)
                                .map_err(|e| e.to_string())?;
                        println!(
                            "adjacency cache: {} lookups ({} hits, {} misses) | \
                             {} words shipped, {} saved | {} staged, {} evicted",
                            cache.lookups,
                            cache.hits,
                            cache.misses,
                            cache.words_shipped,
                            cache.words_saved,
                            cache.staged,
                            cache.evictions,
                        );
                        r
                    } else if timed {
                        let dg = tricount_graph::DistGraph::new_balanced_vertices(&g, p);
                        tricount_core::dist::run_on_timed(dg, alg, &config, model)
                            .map_err(|e| e.to_string())?
                    } else {
                        count_with(&g, p, alg, &config).map_err(|e| e.to_string())?
                    };
                    if timed {
                        println!("overlap-aware makespan: {:.3} ms", r.stats.makespan() * 1e3);
                    }
                    println!("triangles: {}", r.triangles);
                    println!(
                        "{} on {p} PEs: modeled {:.3} ms | {} msgs | {} words total | bottleneck {} words | peak buffer {} words",
                        alg.name(),
                        r.modeled_time(&model) * 1e3,
                        r.stats.total_messages(),
                        r.stats.total_volume(),
                        r.stats.bottleneck_volume(),
                        r.stats.max_peak_buffered(),
                    );
                    for ph in &r.stats.phases {
                        println!("  {:<14} {:.3} ms", ph.name, ph.modeled_time(&model) * 1e3);
                    }
                }
            }
        }
        Command::Lcc {
            source,
            p,
            top,
            transport,
            cache_budget,
        } => {
            let g = load_source(&source)?;
            let mut cfg = DistConfig {
                transport,
                ..DistConfig::default()
            };
            let r = if let Some(budget) = cache_budget {
                use tricount_core::{CacheConfig, RankCache};
                cfg.cache = CacheConfig::with_budget(budget);
                let caches: Vec<std::sync::Mutex<RankCache>> = (0..p)
                    .map(|_| {
                        std::sync::Mutex::new(RankCache::new(cfg.cache, p, cfg.memory_limit_words))
                    })
                    .collect();
                let degrees = g.degrees();
                let dg = tricount_graph::DistGraph::new_balanced_vertices(&g, p);
                let (r, cache) = lcc::lcc_on_cached(dg, &cfg, &degrees, &caches);
                println!(
                    "adjacency cache: {} lookups ({} hits, {} misses) | \
                     {} words shipped, {} saved | {} staged, {} evicted",
                    cache.lookups,
                    cache.hits,
                    cache.misses,
                    cache.words_shipped,
                    cache.words_saved,
                    cache.staged,
                    cache.evictions,
                );
                r
            } else {
                lcc::lcc(&g, p, &cfg)
            };
            println!("triangles: {}", r.triangles);
            let mut by_degree: Vec<u64> = g.vertices().collect();
            by_degree.sort_by_key(|&v| std::cmp::Reverse(g.degree(v)));
            println!(
                "{:>10} {:>8} {:>10} {:>8}",
                "vertex", "degree", "triangles", "lcc"
            );
            for &v in by_degree.iter().take(top) {
                println!(
                    "{:>10} {:>8} {:>10} {:>8.4}",
                    v,
                    g.degree(v),
                    r.per_vertex[v as usize],
                    r.lcc[v as usize]
                );
            }
        }
        Command::Enumerate {
            source,
            p,
            limit,
            transport,
        } => {
            let g = load_source(&source)?;
            let cfg = DistConfig {
                transport,
                ..DistConfig::default()
            };
            let tris = enumerate::enumerate(&g, p, &cfg);
            println!("{} triangles", tris.len());
            for (a, b, c) in tris.iter().take(limit) {
                println!("{a} {b} {c}");
            }
            if tris.len() > limit {
                println!("... ({} more)", tris.len() - limit);
            }
        }
        Command::Info { source } => {
            let g = load_source(&source)?;
            let s = GraphStats::of(&g);
            let t = seq::compact_forward(&g).triangles;
            println!("n          = {}", s.n);
            println!("m          = {}", s.m);
            println!("wedges     = {}", s.wedges);
            println!("triangles  = {t}");
            println!("avg degree = {:.2}", s.avg_degree);
            println!("max degree = {} (skew {:.1})", s.max_degree, s.skew());
            println!("global CC  = {:.4}", global_clustering_coefficient(&g, t));
            println!("degree histogram (log2 bins):");
            for (b, count) in degree_histogram_log2(&g).iter().enumerate() {
                if *count > 0 {
                    println!("  [{:>6}, {:>6}) {:>8}", 1u64 << b, 1u64 << (b + 1), count);
                }
            }
        }
        Command::Update {
            source,
            p,
            batch,
            json,
            transport,
            cache_budget,
        } => {
            use tricount_delta::parse_batches;
            use tricount_engine::{Engine, EngineConfig};
            let g = load_source(&source)?;
            let text = std::fs::read_to_string(&batch).map_err(|e| format!("{batch}: {e}"))?;
            let batches = parse_batches(&text)?;
            if batches.is_empty() {
                return Err(format!("{batch}: no update operations found"));
            }
            let mut ecfg = EngineConfig::new(p);
            if let Some(budget) = cache_budget {
                ecfg = ecfg.with_cache_budget(budget);
            }
            ecfg.dist.transport = transport;
            let engine = Engine::build(&g, ecfg);
            println!(
                "resident count before updates: {} (epoch {})",
                engine.resident_triangles(),
                engine.epoch()
            );
            for (i, b) in batches.iter().enumerate() {
                let r = engine.apply_updates(b).map_err(|e| e.to_string())?;
                println!(
                    "batch {i}: {} ins, {} del, {} noop | triangles {} -> {} ({:+}) | \
                     {} words moved | overlay {:.1}%{}",
                    r.inserted,
                    r.deleted,
                    r.noops,
                    r.triangles_before,
                    r.triangles_after,
                    r.delta(),
                    r.comm.sent_words + r.comm.coll_word_units,
                    r.overlay_fraction * 100.0,
                    if r.compacted { " | compacted" } else { "" }
                );
            }
            let s = engine.stats();
            if json {
                println!("{}", s.to_json());
            } else {
                println!(
                    "applied {} batch(es): {} insertions, {} deletions, {} no-ops, {} compaction(s)",
                    s.updates_applied, s.edges_inserted, s.edges_deleted, s.update_noops,
                    s.compactions
                );
                println!(
                    "resident count after updates: {} (epoch {})",
                    engine.resident_triangles(),
                    engine.epoch()
                );
                if s.adj_cache_enabled {
                    println!(
                        "adjacency cache: {} update-path hits / {} misses | \
                         {} patches, {} invalidations | {} resident entries ({} words)",
                        s.update_adjacency.hits,
                        s.update_adjacency.misses,
                        s.update_adjacency.patches,
                        s.update_adjacency.invalidations,
                        s.adj_cache_entries,
                        s.adj_cache_resident_words,
                    );
                }
            }
        }
        Command::Check {
            source,
            algorithm,
            p,
            lint_root,
        } => {
            use tricount_engine::check::{check_concurrency, CheckOptions};
            let g = load_source(&source)?;
            println!(
                "checking {} on {p} PEs (traced HB/conformance + exhaustive small-fixture schedules)",
                algorithm.name()
            );
            let report = check_concurrency(&g, &CheckOptions::new(p, algorithm))
                .map_err(|e| e.to_string())?;
            print!("{report}");
            let mut failed = !report.passed();
            if let Some(root) = lint_root {
                let lint = tricount_verify::lint_workspace(std::path::Path::new(&root))
                    .map_err(|e| format!("lint scan of {root:?}: {e}"))?;
                print!("{lint}");
                failed |= !lint.is_clean();
            }
            if failed {
                return Err("concurrency check FAILED".to_string());
            }
        }
        Command::Profile {
            source,
            algorithm,
            p,
            model,
            config,
            chrome_trace,
            phase_report,
            metrics_out,
            calibration,
        } => {
            use tricount_comm::SimOptions;
            let model = match resolve_calibration(calibration, &source) {
                Some(path) => apply_calibration(model, &path)?,
                None => model,
            };
            let g = load_source(&source)?;
            let dg = tricount_graph::DistGraph::new_balanced_vertices(&g, p);
            // the threads backend has a wall clock worth measuring; the
            // simulator's schedule is a deterministic fiction
            let opts = SimOptions {
                timing: Some(model),
                record_trace: true,
                wall_profile: config.transport == TransportKind::Threads,
                ..SimOptions::default()
            };
            let (r, trace, dispatch, wall) =
                tricount_core::dist::run_on_profiled(dg, algorithm, &config, &opts)
                    .map_err(|e| e.to_string())?;
            let trace = trace.ok_or("run recorded no trace (trace feature missing?)")?;
            let timeline = wall.as_ref().map(tricount_obs::WallTimeline::build);
            println!("triangles: {}", r.triangles);
            println!(
                "{} on {p} PEs: modeled {:.3} ms | makespan {:.3} ms",
                algorithm.name(),
                r.modeled_time(&model) * 1e3,
                r.stats.makespan() * 1e3
            );
            let rows: Vec<(&str, Vec<(&str, u64)>)> = dispatch
                .phases
                .iter()
                .map(|(ph, c)| (*ph, c.named().to_vec()))
                .collect();
            println!("kernel dispatch ({}):", config.kernels.kernel.name());
            print!("{}", tricount_obs::dispatch_table(&rows));
            if phase_report {
                print!(
                    "{}",
                    tricount_obs::phase_report(&r.stats, Some(&trace), &model)
                );
                print!("{}", tricount_obs::span_summary(&trace));
            }
            if let Some(t) = &timeline {
                print!("{}", t.report());
                let fit = tricount_obs::ModelFitReport::compute(&r.stats, &model, 3.0);
                print!("{}", fit.render());
                if !fit.flagged().is_empty() {
                    let cal = fit.calibrated(&model);
                    println!(
                        "suggested calibrated model: alpha {:.3e} s, beta {:.3e} s/word, \
                         t_op {:.3e} s (or run tricount-pingpong for a measured fit)",
                        cal.alpha, cal.beta, cal.t_op
                    );
                }
            }
            if let Some(path) = chrome_trace {
                if let Some(t) = &timeline {
                    let export = tricount_obs::export_dual(&trace, &r.stats, &model, t);
                    std::fs::write(&path, &export.json).map_err(|e| e.to_string())?;
                    println!(
                        "wrote {path} (dual-clock: {} tracks, {} modeled + {} measured flow \
                         arrows; open in ui.perfetto.dev)",
                        export.tracks, export.modeled_flows, export.measured_flows
                    );
                } else {
                    let export = tricount_obs::export_run(&trace, &r.stats, &model);
                    let recv = r.stats.totals().recv_messages;
                    if export.flow_arrows != recv {
                        return Err(format!(
                            "exporter invariant broken: {} flow arrows but {} delivered messages",
                            export.flow_arrows, recv
                        ));
                    }
                    std::fs::write(&path, &export.json).map_err(|e| e.to_string())?;
                    println!(
                        "wrote {path} ({} tracks, {} flow arrows; open in ui.perfetto.dev)",
                        export.tracks, export.flow_arrows
                    );
                }
            }
            if let Some(path) = metrics_out {
                let mut reg = tricount_obs::run_metrics(&r.stats, &model, Some(&trace));
                if let Some(t) = &timeline {
                    tricount_obs::wall_metrics(&mut reg, t, r.stats.contention.as_ref());
                }
                std::fs::write(&path, reg.render()).map_err(|e| e.to_string())?;
                println!("wrote {path}");
            }
        }
        Command::Serve {
            source,
            p,
            queries,
            seed,
            json,
            metrics_out,
            transport,
            cache_budget,
            tenants,
            updates,
            host_workers,
        } => {
            use tricount_engine::{scripted_workload, Engine, EngineConfig};
            let g = load_source(&source)?;
            let mut ecfg = EngineConfig::new(p);
            if let Some(budget) = cache_budget {
                ecfg = ecfg.with_cache_budget(budget);
            }
            ecfg.dist.transport = transport;
            if tenants > 1 || updates > 0 {
                return serve_host(
                    &g,
                    ecfg,
                    queries,
                    seed,
                    json,
                    metrics_out,
                    tenants,
                    updates,
                    host_workers,
                );
            }
            let engine = Engine::build(&g, ecfg);
            let workload = scripted_workload(queries, g.num_vertices(), seed);
            let mut answered = 0usize;
            let mut failed = 0usize;
            for q in workload {
                loop {
                    match engine.submit(q.clone()) {
                        Ok(_) => break,
                        // closed loop: drain under backpressure, resubmit
                        Err(_) => {
                            for (_, a) in engine.tick() {
                                answered += 1;
                                failed += usize::from(a.is_err());
                            }
                        }
                    }
                }
            }
            while engine.queue_depth() > 0 {
                for (_, a) in engine.tick() {
                    answered += 1;
                    failed += usize::from(a.is_err());
                }
            }
            let s = engine.stats();
            if json {
                println!("{}", s.to_json());
            } else {
                println!(
                    "served {answered} queries on {p} PEs ({failed} failed, {} batches)",
                    s.batches
                );
                println!(
                    "cache: {} hits / {} misses ({:.1}% hit rate, {} resident entries)",
                    s.cache_hits,
                    s.cache_misses,
                    s.cache_hit_rate() * 100.0,
                    s.cache_entries
                );
                println!(
                    "setup ran {} time(s); queries moved {} msgs / {} words",
                    s.setup_runs, s.query_comm.sent_messages, s.query_comm.sent_words
                );
                if s.adj_cache_enabled {
                    println!(
                        "adjacency cache: {} hits / {} misses ({:.1}% hit rate) | \
                         {} words shipped, {} saved | {} resident entries ({} words)",
                        s.query_adjacency.hits,
                        s.query_adjacency.misses,
                        s.adj_cache_hit_rate() * 100.0,
                        s.query_adjacency.words_shipped,
                        s.query_adjacency.words_saved,
                        s.adj_cache_entries,
                        s.adj_cache_resident_words,
                    );
                }
                println!(
                    "modeled query time {:.3} ms | wall {:.3} ms",
                    s.modeled_seconds_total * 1e3,
                    s.wall_seconds_total * 1e3
                );
                println!(
                    "queue wait p50 {:.3} ms | p99 {:.3} ms | max {:.3} ms",
                    s.queue_wait.p50 * 1e3,
                    s.queue_wait.p99 * 1e3,
                    s.queue_wait.max * 1e3
                );
            }
            if let Some(path) = metrics_out {
                std::fs::write(&path, engine.prometheus()).map_err(|e| e.to_string())?;
                println!("wrote {path}");
            }
        }
    }
    Ok(())
}

/// Host-mode serving: the scripted workload round-robins across `tenants`
/// resident engines behind one `EngineHost`, with `updates` random edge
/// batches interleaved, all drained by a background serve loop.
#[allow(clippy::too_many_arguments)]
fn serve_host(
    g: &Csr,
    ecfg: tricount_engine::EngineConfig,
    queries: usize,
    seed: u64,
    json: bool,
    metrics_out: Option<String>,
    tenants: usize,
    updates: usize,
    host_workers: usize,
) -> Result<(), String> {
    use tricount_delta::random_batch;
    use tricount_engine::{
        scripted_workload, EngineHost, HostConfig, HostError, HostReply, HostRequest,
    };
    let mut hcfg = HostConfig::new();
    hcfg.pool_workers = ecfg.workers;
    hcfg.serve_workers = host_workers;
    hcfg.tenant_quota = hcfg.tenant_quota.max(queries / tenants.max(1) + 1);
    hcfg.global_inflight = hcfg.global_inflight.max(queries + tenants);
    let host = EngineHost::new(hcfg);
    let names: Vec<String> = (0..tenants).map(|i| format!("t{i}")).collect();
    for name in &names {
        host.add_tenant(name, g, ecfg.clone())
            .map_err(|e| e.to_string())?;
    }
    let workload = scripted_workload(queries, g.num_vertices(), seed);
    let stride = (queries / updates.max(1)).max(1);
    let handle = host.serve();
    let mut sent_updates = 0usize;
    for (i, q) in workload.into_iter().enumerate() {
        if updates > 0 && i % stride == 0 && sent_updates < updates {
            host.submit(HostRequest::Update {
                tenant: names[sent_updates % tenants].clone(),
                batch: random_batch(g, 16, seed ^ (0x9e37 + sent_updates as u64)),
            })
            .map_err(|e| e.to_string())?;
            sent_updates += 1;
        }
        loop {
            match host.submit(HostRequest::Query {
                tenant: names[i % tenants].clone(),
                query: q.clone(),
            }) {
                Ok(_) => break,
                // closed loop: drain under backpressure, resubmit. When
                // every job is already on a serve worker the queue is
                // empty and drain() is a no-op — back off instead of
                // spinning hot until a worker frees budget.
                Err(HostError::Overloaded { .. }) => {
                    if host.drain() == 0 {
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    }
                }
                Err(e) => return Err(e.to_string()),
            }
        }
    }
    handle.stop();
    host.drain();
    let mut answers = 0usize;
    let mut receipts = 0usize;
    let mut failed = 0usize;
    for reply in host.poll() {
        match reply {
            HostReply::Answer { result, .. } => {
                answers += 1;
                failed += usize::from(result.is_err());
            }
            HostReply::Receipt { result, .. } => {
                receipts += 1;
                failed += usize::from(result.is_err());
            }
        }
    }
    let s = host.stats();
    if json {
        let per_tenant: Vec<String> = s
            .per_tenant
            .iter()
            .map(|t| {
                format!(
                    "{{\"tenant\":\"{}\",\"submitted\":{},\"rejected\":{},\"answered\":{},\
                     \"updates\":{},\"epoch\":{},\"epochs_live\":{},\"readers_pinned\":{},\
                     \"resident_triangles\":{}}}",
                    t.tenant,
                    t.submitted,
                    t.rejected,
                    t.answered,
                    t.updates,
                    t.epoch,
                    t.epochs_live,
                    t.readers_pinned,
                    t.resident_triangles
                )
            })
            .collect();
        println!(
            "{{\"tenants\":{},\"answers\":{answers},\"receipts\":{receipts},\"failed\":{failed},\
             \"per_tenant\":[{}]}}",
            s.tenants,
            per_tenant.join(",")
        );
    } else {
        println!(
            "host served {answers} answers across {} tenant(s) \
             ({receipts} update receipts, {failed} failed)",
            s.tenants
        );
        for t in &s.per_tenant {
            println!(
                "tenant {}: {} submitted, {} answered, {} rejected, {} updates | \
                 epoch {} ({} live, {} pinned readers) | {} resident triangles",
                t.tenant,
                t.submitted,
                t.answered,
                t.rejected,
                t.updates,
                t.epoch,
                t.epochs_live,
                t.readers_pinned,
                t.resident_triangles
            );
        }
    }
    if let Some(path) = metrics_out {
        std::fs::write(&path, host.prometheus()).map_err(|e| e.to_string())?;
        println!("wrote {path}");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parse_count_with_family() {
        let cmd = parse(&args("count --family rmat --n 1024 --p 8 --alg ditric2")).unwrap();
        match cmd {
            Command::Count {
                source,
                algorithm,
                p,
                ..
            } => {
                assert_eq!(
                    source,
                    Source::Family {
                        family: Family::Rmat,
                        n: 1024,
                        seed: 42
                    }
                );
                assert_eq!(algorithm, Some(Algorithm::Ditric2));
                assert_eq!(p, 8);
            }
            _ => panic!("wrong command"),
        }
    }

    #[test]
    fn parse_seq_algorithm() {
        let cmd = parse(&args("count --family gnm --alg seq")).unwrap();
        assert!(matches!(
            cmd,
            Command::Count {
                algorithm: None,
                ..
            }
        ));
    }

    #[test]
    fn parse_generate_and_info() {
        let cmd = parse(&args("generate --dataset orkut --n 512 -o out.bin")).unwrap();
        assert!(matches!(cmd, Command::Generate { .. }));
        let cmd = parse(&args("info --input g.txt")).unwrap();
        assert_eq!(
            cmd,
            Command::Info {
                source: Source::File("g.txt".into())
            }
        );
    }

    #[test]
    fn parse_overrides() {
        let cmd = parse(&args(
            "count --family gnm --alg ditric --routing grid --delta-factor 0.5",
        ))
        .unwrap();
        match cmd {
            Command::Count { config, .. } => {
                assert_eq!(config.routing, Routing::Grid);
                assert_eq!(
                    config.aggregation,
                    Aggregation::Dynamic { delta_factor: 0.5 }
                );
            }
            _ => panic!("wrong command"),
        }
    }

    #[test]
    fn parse_errors() {
        assert!(parse(&args("count")).is_err()); // no source
        assert!(parse(&args("frobnicate --family gnm")).is_err()); // bad verb
        assert!(parse(&args("count --family nope")).is_err());
        assert!(parse(&args("count --family gnm --alg nope")).is_err());
        assert!(parse(&args("generate --input x.txt -o y.txt")).is_err());
        assert!(parse(&args("count --family gnm --model dialup")).is_err());
        assert!(parse(&args("count --family gnm --transport carrier-pigeon")).is_err());
        assert!(parse(&[]).is_err());
    }

    #[test]
    fn parse_transport_override() {
        let cmd = parse(&args("count --family gnm --transport threads")).unwrap();
        match cmd {
            Command::Count { config, .. } => {
                assert_eq!(config.transport, TransportKind::Threads)
            }
            _ => panic!("wrong command"),
        }
        // default stays on the simulator
        let cmd = parse(&args("lcc --family gnm")).unwrap();
        match cmd {
            Command::Lcc { transport, .. } => assert_eq!(transport, TransportKind::Sim),
            _ => panic!("wrong command"),
        }
    }

    #[test]
    fn execute_count_on_generated_graph() {
        let cmd = parse(&args("count --family rgg2d --n 512 --p 4 --alg cetric")).unwrap();
        execute(cmd).unwrap();
    }

    #[test]
    fn execute_count_on_threads_transport() {
        let cmd = parse(&args(
            "count --family rgg2d --n 512 --p 4 --alg cetric --transport threads",
        ))
        .unwrap();
        execute(cmd).unwrap();
    }

    #[test]
    fn parse_kernel_overrides() {
        use tricount_graph::kernels::KernelChoice;
        let cmd = parse(&args(
            "count --family gnm --alg cetric --kernel gallop --pool-workers 4",
        ))
        .unwrap();
        match cmd {
            Command::Count { config, .. } => {
                assert_eq!(config.kernels.kernel, KernelChoice::Gallop);
                assert_eq!(config.kernels.pool_workers, 4);
                assert!(config.kernels.chunking);
            }
            _ => panic!("wrong command"),
        }
        // one worker leaves the sequential local phase in place
        let cmd = parse(&args("count --family gnm --alg cetric --pool-workers 1")).unwrap();
        match cmd {
            Command::Count { config, .. } => {
                assert_eq!(config.kernels.pool_workers, 1);
                assert!(!config.kernels.chunking);
            }
            _ => panic!("wrong command"),
        }
        // profile takes the same overrides
        let cmd = parse(&args("profile --family gnm --alg cetric --kernel bitmap")).unwrap();
        match cmd {
            Command::Profile { config, .. } => {
                assert_eq!(config.kernels.kernel, KernelChoice::Bitmap);
            }
            _ => panic!("wrong command"),
        }
        assert!(parse(&args("count --family gnm --kernel nope")).is_err());
        assert!(parse(&args("count --family gnm --pool-workers 0")).is_err());
        assert!(parse(&args("count --family gnm --pool-workers x")).is_err());
    }

    #[test]
    fn execute_count_with_kernel_overrides() {
        for flags in [
            "--kernel merge",
            "--kernel bitmap",
            "--kernel auto --pool-workers 2",
        ] {
            let cmd = parse(&args(&format!(
                "count --family rgg2d --n 512 --p 4 --alg cetric {flags}"
            )))
            .unwrap();
            execute(cmd).unwrap();
        }
    }

    #[test]
    fn parse_and_execute_serve() {
        let cmd = parse(&args("serve --family rgg2d --n 256 --p 3 --queries 40")).unwrap();
        match &cmd {
            Command::Serve {
                p, queries, json, ..
            } => {
                assert_eq!(*p, 3);
                assert_eq!(*queries, 40);
                assert!(!json);
            }
            _ => panic!("wrong command"),
        }
        execute(cmd).unwrap();
        let cmd = parse(&args(
            "serve --family gnm --n 128 --p 2 --queries 10 --json 1",
        ))
        .unwrap();
        execute(cmd).unwrap();
    }

    #[test]
    fn parse_and_execute_profile() {
        let cmd = parse(&args("profile --family rgg2d --n 256 --p 4 --alg cetric2")).unwrap();
        match &cmd {
            Command::Profile {
                algorithm,
                p,
                chrome_trace,
                phase_report,
                ..
            } => {
                assert_eq!(*algorithm, Algorithm::Cetric2);
                assert_eq!(*p, 4);
                assert!(chrome_trace.is_none());
                assert!(!phase_report);
            }
            _ => panic!("wrong command"),
        }
        execute(cmd).unwrap();
        // seq has no trace to export
        assert!(parse(&args("profile --family gnm --alg seq")).is_err());
    }

    #[test]
    fn profile_exports_both_formats() {
        let dir = std::env::temp_dir();
        let trace_path = dir.join("tricount_cli_profile.json");
        let prom_path = dir.join("tricount_cli_profile.prom");
        let cmd = parse(&args(&format!(
            "profile --family rmat --n 512 --p 4 --alg cetric --phase-report 1 \
             --chrome-trace {} --metrics-out {}",
            trace_path.display(),
            prom_path.display()
        )))
        .unwrap();
        execute(cmd).unwrap();
        let json = std::fs::read_to_string(&trace_path).unwrap();
        assert!(json.contains("traceEvents"));
        let prom = std::fs::read_to_string(&prom_path).unwrap();
        assert!(prom.contains("tricount_run_pes"));
        std::fs::remove_file(trace_path).ok();
        std::fs::remove_file(prom_path).ok();
    }

    #[test]
    fn profile_on_threads_exports_dual_clock() {
        let dir = std::env::temp_dir();
        let trace_path = dir.join("tricount_cli_profile_dual.json");
        let prom_path = dir.join("tricount_cli_profile_dual.prom");
        let cmd = parse(&args(&format!(
            "profile --family rgg2d --n 512 --p 4 --alg cetric --transport threads \
             --chrome-trace {} --metrics-out {}",
            trace_path.display(),
            prom_path.display()
        )))
        .unwrap();
        execute(cmd).unwrap();
        let json = std::fs::read_to_string(&trace_path).unwrap();
        assert!(json.contains("traceEvents"));
        assert!(json.contains("measured (wall)"), "missing measured track");
        assert!(json.contains("simulated machine"), "missing modeled track");
        let prom = std::fs::read_to_string(&prom_path).unwrap();
        assert!(prom.contains("tricount_run_pes"));
        assert!(prom.contains("tricount_wall_queue_dwell_nanos"));
        assert!(prom.contains("tricount_wall_barrier_spin_seconds"));
        std::fs::remove_file(trace_path).ok();
        std::fs::remove_file(prom_path).ok();
    }

    #[test]
    fn calibration_file_replaces_model_constants() {
        let dir = std::env::temp_dir();
        let cal_path = dir.join("tricount_cli_calibration.json");
        std::fs::write(
            &cal_path,
            "{\"probe\":\"pingpong\",\"alpha_seconds\":1.5e-7,\
             \"beta_seconds_per_word\":2.0e-10}",
        )
        .unwrap();
        let model = apply_calibration(CostModel::supermuc(), cal_path.to_str().unwrap()).unwrap();
        assert!((model.alpha - 1.5e-7).abs() < 1e-12);
        assert!((model.beta - 2.0e-10).abs() < 1e-15);
        assert_eq!(model.t_op, CostModel::supermuc().t_op);

        // allgather reports only the logarithmic alpha
        std::fs::write(&cal_path, "{\"alpha_log_seconds\":3.0e-7}").unwrap();
        let model = apply_calibration(CostModel::cloud(), cal_path.to_str().unwrap()).unwrap();
        assert!((model.alpha - 3.0e-7).abs() < 1e-12);
        assert_eq!(model.beta, CostModel::cloud().beta);

        // not a calibration file at all
        std::fs::write(&cal_path, "{\"foo\":1}").unwrap();
        assert!(apply_calibration(CostModel::supermuc(), cal_path.to_str().unwrap()).is_err());

        // end to end through the count verb
        let cmd = parse(&args(&format!(
            "count --family rgg2d --n 256 --p 2 --alg cetric --calibration {}",
            {
                std::fs::write(
                    &cal_path,
                    "{\"alpha_seconds\":1e-7,\"beta_seconds_per_word\":1e-10}",
                )
                .unwrap();
                cal_path.display()
            }
        )))
        .unwrap();
        execute(cmd).unwrap();
        std::fs::remove_file(cal_path).ok();
    }

    #[test]
    fn parse_and_execute_cache_budget() {
        // the flag parses on every verb that takes it
        let cmd = parse(&args(
            "count --family rgg2d --n 256 --p 4 --cache-budget 65536",
        ))
        .unwrap();
        match &cmd {
            Command::Count { cache_budget, .. } => assert_eq!(*cache_budget, Some(65536)),
            _ => panic!("wrong command"),
        }
        execute(cmd).unwrap();
        let cmd = parse(&args(
            "lcc --family rgg2d --n 256 --p 4 --cache-budget 65536",
        ))
        .unwrap();
        match &cmd {
            Command::Lcc { cache_budget, .. } => assert_eq!(*cache_budget, Some(65536)),
            _ => panic!("wrong command"),
        }
        execute(cmd).unwrap();
        let cmd = parse(&args(
            "serve --family rgg2d --n 128 --p 2 --queries 10 --cache-budget 65536",
        ))
        .unwrap();
        match &cmd {
            Command::Serve { cache_budget, .. } => assert_eq!(*cache_budget, Some(65536)),
            _ => panic!("wrong command"),
        }
        execute(cmd).unwrap();
        // absent = cache off; garbage is rejected
        match parse(&args("count --family gnm")).unwrap() {
            Command::Count { cache_budget, .. } => assert_eq!(cache_budget, None),
            _ => panic!("wrong command"),
        }
        assert!(parse(&args("count --family gnm --cache-budget lots")).is_err());
    }

    #[test]
    fn execute_update_with_cache_budget() {
        let dir = std::env::temp_dir();
        let path = dir.join("tricount_cli_cached_updates.txt");
        std::fs::write(&path, "+ 0 1\n+ 1 2\n+ 0 2\n").unwrap();
        let cmd = parse(&args(&format!(
            "update --family rgg2d --n 128 --p 2 --cache-budget 65536 --batch {}",
            path.display()
        )))
        .unwrap();
        match &cmd {
            Command::Update { cache_budget, .. } => assert_eq!(*cache_budget, Some(65536)),
            _ => panic!("wrong command"),
        }
        execute(cmd).unwrap();
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn calibration_is_discovered_next_to_the_graph() {
        let dir = std::env::temp_dir().join("tricount_cli_autocal");
        std::fs::create_dir_all(&dir).unwrap();
        let graph = dir.join("g.bin");
        let graph_s = graph.to_str().unwrap().to_string();
        execute(
            parse(&args(&format!(
                "generate --family gnm --n 128 -o {graph_s}"
            )))
            .unwrap(),
        )
        .unwrap();

        // no sibling file: nothing is discovered
        let src = Source::File(graph_s.clone());
        assert_eq!(resolve_calibration(None, &src), None);

        // a calibration.json next to the graph is picked up and applied
        let cal = dir.join("calibration.json");
        std::fs::write(
            &cal,
            "{\"alpha_seconds\":1e-7,\"beta_seconds_per_word\":1e-10}",
        )
        .unwrap();
        assert_eq!(
            resolve_calibration(None, &src),
            Some(cal.to_str().unwrap().to_string())
        );
        execute(
            parse(&args(&format!(
                "count --input {graph_s} --p 2 --alg cetric"
            )))
            .unwrap(),
        )
        .unwrap();

        // an explicit --calibration always wins over discovery
        assert_eq!(
            resolve_calibration(Some("explicit.json".into()), &src),
            Some("explicit.json".to_string())
        );

        // generated sources have no directory to search
        assert_eq!(
            resolve_calibration(
                None,
                &Source::Family {
                    family: Family::Gnm,
                    n: 64,
                    seed: 1
                }
            ),
            None
        );
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn parse_and_execute_serve_host_mode() {
        let cmd = parse(&args(
            "serve --family rgg2d --n 160 --p 2 --queries 12 --tenants 2 --updates 2 \
             --host-workers 2",
        ))
        .unwrap();
        match &cmd {
            Command::Serve {
                tenants,
                updates,
                host_workers,
                ..
            } => {
                assert_eq!(*tenants, 2);
                assert_eq!(*updates, 2);
                assert_eq!(*host_workers, 2);
            }
            _ => panic!("wrong command"),
        }
        execute(cmd).unwrap();

        // host-mode exposition carries per-tenant labels
        let dir = std::env::temp_dir();
        let path = dir.join("tricount_cli_serve_host.prom");
        let cmd = parse(&args(&format!(
            "serve --family rgg2d --n 160 --p 2 --queries 8 --tenants 2 --updates 1 \
             --json 1 --metrics-out {}",
            path.display()
        )))
        .unwrap();
        execute(cmd).unwrap();
        let prom = std::fs::read_to_string(&path).unwrap();
        assert!(prom.contains("tricount_host_submitted_total{tenant=\"t0\"}"));
        assert!(prom.contains("tricount_host_tenant_epochs_live"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn serve_writes_metrics_exposition() {
        let dir = std::env::temp_dir();
        let path = dir.join("tricount_cli_serve.prom");
        let cmd = parse(&args(&format!(
            "serve --family rgg2d --n 128 --p 2 --queries 10 --metrics-out {}",
            path.display()
        )))
        .unwrap();
        execute(cmd).unwrap();
        let prom = std::fs::read_to_string(&path).unwrap();
        assert!(prom.contains("tricount_engine_submitted_total"));
        assert!(prom.contains("tricount_engine_queue_wait_seconds"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn parse_and_execute_update() {
        let dir = std::env::temp_dir();
        let path = dir.join("tricount_cli_updates.txt");
        std::fs::write(&path, "# two batches\n+ 0 1\n+ 1 2\n+ 0 2\n\n- 0 1\n").unwrap();
        let cmd = parse(&args(&format!(
            "update --family rgg2d --n 128 --p 2 --batch {}",
            path.display()
        )))
        .unwrap();
        match &cmd {
            Command::Update { p, batch, json, .. } => {
                assert_eq!(*p, 2);
                assert_eq!(batch, path.to_str().unwrap());
                assert!(!json);
            }
            _ => panic!("wrong command"),
        }
        execute(cmd).unwrap();
        // --batch is mandatory; garbage batch files are rejected
        assert!(parse(&args("update --family gnm --n 64")).is_err());
        std::fs::write(&path, "* nope\n").unwrap();
        let cmd = parse(&args(&format!(
            "update --family gnm --n 64 --batch {}",
            path.display()
        )))
        .unwrap();
        assert!(execute(cmd).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn execute_roundtrip_through_file() {
        let dir = std::env::temp_dir();
        let path = dir.join("tricount_cli_test.bin");
        let path_s = path.to_str().unwrap().to_string();
        execute(parse(&args(&format!("generate --family gnm --n 256 -o {path_s}"))).unwrap())
            .unwrap();
        execute(parse(&args(&format!("info --input {path_s}"))).unwrap()).unwrap();
        execute(parse(&args(&format!("count --input {path_s} --p 3 --alg ditric"))).unwrap())
            .unwrap();
        std::fs::remove_file(path).ok();
    }
}

//! The `tricount` command-line tool: generate instances, count triangles
//! with any algorithm variant on the simulated distributed machine, compute
//! LCCs, enumerate triangles, inspect graph statistics.
//!
//! ```text
//! tricount count --family rmat --n 16384 --p 32 --alg cetric2 --model cloud
//! tricount generate --dataset orkut --n 8192 -o orkut.bin
//! tricount lcc --input orkut.bin --p 8 --top 20
//! tricount info --family rhg --n 4096
//! ```

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match cetric::cli::parse(&args).and_then(cetric::cli::execute) {
        Ok(()) => {}
        Err(e) => {
            eprintln!("error: {e}");
            // The one sanctioned exit: a bin's main deciding its exit code.
            #[allow(clippy::disallowed_methods)]
            std::process::exit(1);
        }
    }
}

//! # cetric — distributed-memory triangle counting, reproduced in Rust
//!
//! A from-scratch reproduction of Sanders & Uhl, *Engineering a
//! Distributed-Memory Triangle Counting Algorithm* (IPDPS 2023): the DITRIC
//! and CETRIC algorithms with dynamic message aggregation, grid-indirect
//! communication and cut-graph contraction, running on a simulated
//! distributed-memory machine with an explicit α-β cost model, together with
//! all the substrates the paper depends on (graph partitioning with ghosts,
//! synthetic graph generators, Bloom-filter AMQs, a work-stealing pool) and
//! the baselines it compares against.
//!
//! This crate re-exports the whole public API:
//!
//! * [`graph`] — CSR graphs, degree orientation, 1D partitioning, ghosts,
//!   cut-graph contraction.
//! * [`comm`] — the simulated machine: runtime, buffered message queue,
//!   sparse all-to-all, grid routing, cost model, statistics.
//! * [`gen`] — deterministic GNM / RGG2D / RHG / R-MAT / road generators and
//!   the Table-I proxy datasets.
//! * [`amq`] — Bloom filters for the approximate extension.
//! * [`par`] — the work-stealing pool for hybrid mode.
//! * [`core`] — the algorithms: sequential COMPACT-FORWARD, DITRIC(²),
//!   CETRIC(²), TriC-like and HavoqGT-like baselines, distributed LCC, and
//!   AMQ-approximate counting.
//! * [`engine`] — the resident query engine: load a graph once, then serve
//!   batched triangle / LCC / edge-support / approximate queries against the
//!   prepared per-rank state with an epoch-keyed result cache.
//! * [`delta`] — dynamic graph updates: batched edge insertions/deletions
//!   with per-PE adjacency overlays; `Engine::apply_updates` maintains the
//!   resident triangle count incrementally through the distributed delta
//!   protocol in [`core`]'s `dist::delta`.
//! * [`obs`] — observability: deterministic Chrome-trace export of recorded
//!   runs, log-bucketed latency histograms, Prometheus text exposition, and
//!   terminal phase reports (`tricount profile`, `serve --metrics-out`).
//!
//! ## Example
//!
//! ```
//! use cetric::prelude::*;
//!
//! let g = cetric::gen::rgg2d_default(1_000, 42);
//! let seq = cetric::core::seq::compact_forward(&g);
//! let dist = cetric::core::count(&g, 8, Algorithm::Cetric2).unwrap();
//! assert_eq!(seq.triangles, dist.triangles);
//! let model = CostModel::supermuc();
//! println!("modeled time on 8 PEs: {:.3} ms", dist.modeled_time(&model) * 1e3);
//! ```

#![warn(missing_docs)]

pub mod cli;

pub use tricount_amq as amq;
pub use tricount_comm as comm;
pub use tricount_core as core;
pub use tricount_delta as delta;
pub use tricount_engine as engine;
pub use tricount_gen as gen;
pub use tricount_graph as graph;
pub use tricount_obs as obs;
pub use tricount_par as par;

/// The most commonly used items in one import.
pub mod prelude {
    pub use tricount_comm::{CostModel, Routing, RunStats};
    pub use tricount_core::{
        count, count_with, Aggregation, Algorithm, CountResult, DistConfig, DistError,
    };
    pub use tricount_delta::{parse_batches, EdgeUpdate, UpdateBatch};
    pub use tricount_engine::{
        Engine, EngineConfig, EngineError, Query, QueryAnswer, UpdateReceipt,
    };
    pub use tricount_gen::{Dataset, Family};
    pub use tricount_graph::{Csr, DistGraph, EdgeList, OrderingKind, Partition, VertexId};
}

//! A minimal, dependency-free stand-in for the `proptest` crate, providing
//! the subset of the 1.x API this workspace's tests use: [`Strategy`] with
//! `prop_map`/`prop_flat_map`/`boxed`, [`strategy::Just`], integer and `f64`
//! range strategies, tuple strategies, [`collection::vec`], the
//! [`proptest!`]/[`prop_oneof!`]/`prop_assert*` macros and
//! [`test_runner::ProptestConfig`].
//!
//! Semantics differ from real proptest in two deliberate ways:
//!
//! * **Deterministic cases, no persistence** — each test case draws from a
//!   SplitMix64 RNG seeded from the test's module path and case index, so
//!   failures reproduce exactly on re-run without a regression file.
//! * **No shrinking** — a failing case reports its inputs via the assertion
//!   message but is not minimised.
//!
//! The workspace builds offline; vendoring this shim keeps `proptest` a
//! dev-dependency in the manifests while requiring nothing from a registry.

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;

    /// A source of random values of one type. Unlike real proptest there is
    /// no value tree: strategies produce plain values and nothing shrinks.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }

        /// Generates a value, then samples from the strategy `f` builds
        /// from it (dependent generation).
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { base: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: std::rc::Rc::new(self),
            }
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            let mid = self.base.sample(rng);
            (self.f)(mid).sample(rng)
        }
    }

    /// A type-erased strategy (see [`Strategy::boxed`]).
    #[derive(Clone)]
    pub struct BoxedStrategy<V> {
        inner: std::rc::Rc<dyn Strategy<Value = V>>,
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            self.inner.sample(rng)
        }
    }

    /// Uniform choice among equally weighted alternatives (the engine behind
    /// [`crate::prop_oneof!`]).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Builds the union; `options` must be nonempty.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            let i = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[i].sample(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + (rng.next_u64() % (span + 1)) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let unit = rng.next_u64() as f64 / (u64::MAX as f64 + 1.0);
            self.start + (self.end - self.start) * unit
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))+) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        )+};
    }
    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
    }
}

pub mod collection {
    //! Strategies for collections.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A range of collection sizes.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Generates `Vec`s with elements from `element` and a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Test configuration and the deterministic case RNG.

    /// Per-test configuration. Only `cases` is honoured by the shim; the
    /// struct is non-exhaustive-in-spirit to stay source-compatible with
    /// `ProptestConfig { cases: n, ..Default::default() }` call sites.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// SplitMix64 RNG, seeded per (test, case) so failures replay exactly.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The RNG for one case of one named test.
        pub fn for_case(test_name: &str, case: u32) -> Self {
            // FNV-1a over the name, mixed with the case index
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in test_name.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
            }
            let mut rng = TestRng {
                state: h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            };
            // warm up so nearby seeds decorrelate
            rng.next_u64();
            rng
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub mod prelude {
    //! The usual `use proptest::prelude::*;` imports.

    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            @cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                for __case in 0..config.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(
                        let $pat = $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                    )+
                    $body
                }
            }
        )*
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// `assert!` under a property (no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::for_case("ranges", 0);
        for _ in 0..1000 {
            let x = (3u64..17).sample(&mut rng);
            assert!((3..17).contains(&x));
            let y = (0.5f64..2.0).sample(&mut rng);
            assert!((0.5..2.0).contains(&y));
            let z = (5usize..=5).sample(&mut rng);
            assert_eq!(z, 5);
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = crate::test_runner::TestRng::for_case("vecs", 1);
        let s = crate::collection::vec(0u64..10, 2..5);
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let draw = |case| {
            let mut rng = crate::test_runner::TestRng::for_case("det", case);
            (0u64..1_000_000).sample(&mut rng)
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_samples_compose((a, b) in (0u64..50, 1u64..9), c in prop_oneof![Just(1u64), 10u64..20]) {
            prop_assert!(a < 50 && (1..9).contains(&b));
            prop_assert!(c == 1 || (10..20).contains(&c));
            let nested = crate::collection::vec(0u64..5, 0..4)
                .prop_flat_map(|v| (Just(v.len()), 0u64..6))
                .prop_map(|(l, x)| l as u64 + x);
            let mut rng = crate::test_runner::TestRng::for_case("nested", 0);
            prop_assert!(nested.sample(&mut rng) < 9);
        }
    }
}

//! Shape-level reproduction checks: the qualitative claims of the paper's
//! evaluation must hold in the simulator — aggregation beats per-edge
//! messaging, contraction shrinks the cut-dependent volume on local graphs
//! but not on GNM, grid indirection caps fan-in, DITRIC's memory stays
//! linear while static buffering blows up, and modeled times scale sanely.

use cetric::prelude::*;

fn global_volume(r: &CountResult) -> u64 {
    r.stats
        .phases
        .iter()
        .filter(|ph| ph.name == "global")
        .map(|ph| ph.total_volume())
        .sum()
}

#[test]
fn fig2_shape_aggregation_wins_at_every_p() {
    let g = Dataset::Friendster.generate(1 << 11, 4);
    let model = CostModel::supermuc();
    for p in [4usize, 8, 16, 32] {
        let unagg = count(&g, p, Algorithm::Unaggregated).unwrap();
        let agg = count(&g, p, Algorithm::Ditric).unwrap();
        assert_eq!(unagg.triangles, agg.triangles);
        // order-of-magnitude running-time gap from startup overheads
        let gap = unagg.modeled_time(&model) / agg.modeled_time(&model);
        assert!(gap > 4.0, "p={p}: aggregation gap only {gap:.2}");
        // the mechanism: per-edge messaging floods the network with small
        // messages
        assert!(
            unagg.stats.total_messages() > 3 * agg.stats.total_messages(),
            "p={p}: unagg msgs {} !≫ agg msgs {}",
            unagg.stats.total_messages(),
            agg.stats.total_messages()
        );
    }
}

#[test]
fn fig5_shape_cetric_cuts_volume_on_rgg_not_on_gnm() {
    let p = 8;
    // RGG2D: strong locality → contraction pays in volume
    let rgg = cetric::gen::rgg2d_default(1 << 12, 2);
    let d = count(&rgg, p, Algorithm::Ditric).unwrap();
    let c = count(&rgg, p, Algorithm::Cetric).unwrap();
    let ratio_rgg = global_volume(&d) as f64 / global_volume(&c).max(1) as f64;
    assert!(ratio_rgg > 1.5, "RGG volume reduction only {ratio_rgg:.2}x");

    // GNM: no locality → reduction marginal (paper: "almost no reduction")
    let gnm = cetric::gen::gnm(1 << 12, 16 << 12, 2);
    let d = count(&gnm, p, Algorithm::Ditric).unwrap();
    let c = count(&gnm, p, Algorithm::Cetric).unwrap();
    let ratio_gnm = global_volume(&d) as f64 / global_volume(&c).max(1) as f64;
    assert!(
        ratio_gnm < ratio_rgg,
        "GNM reduction {ratio_gnm:.2} !< RGG reduction {ratio_rgg:.2}"
    );
    // and CETRIC costs extra local work on GNM without volume payoff
    assert!(c.stats.total_work() > d.stats.total_work());
}

#[test]
fn indirection_caps_peer_fanout_at_scale() {
    // RMAT hub: many PEs send to the hub's owner
    let g = cetric::gen::rmat_default(10, 6);
    let p = 36;
    let direct = count(&g, p, Algorithm::Ditric).unwrap();
    let indirect = count(&g, p, Algorithm::Ditric2).unwrap();
    assert_eq!(direct.triangles, indirect.triangles);
    let max_peers_direct = direct
        .stats
        .phases
        .iter()
        .flat_map(|ph| ph.per_rank.iter())
        .map(|c| c.recv_peers)
        .max()
        .unwrap();
    let max_peers_indirect = indirect
        .stats
        .phases
        .iter()
        .flat_map(|ph| ph.per_rank.iter())
        .map(|c| c.recv_peers)
        .max()
        .unwrap();
    // grid bound: ≈ row + column (2√p) plus degree-exchange traffic, which
    // is dense. Compare only the global phase peers → use last phase.
    let global_direct = direct.stats.phases.last().unwrap();
    let global_indirect = indirect.stats.phases.last().unwrap();
    let gd = global_direct
        .per_rank
        .iter()
        .map(|c| c.recv_peers)
        .max()
        .unwrap();
    let gi = global_indirect
        .per_rank
        .iter()
        .map(|c| c.recv_peers)
        .max()
        .unwrap();
    assert!(
        gi <= gd,
        "indirect peers {gi} > direct {gd} (run-wide {max_peers_indirect} vs {max_peers_direct})"
    );
    // volume penalty bounded by 2×
    assert!(indirect.stats.total_volume() <= 2 * direct.stats.total_volume() + 1000);
}

#[test]
fn memory_bounds_linear_vs_superlinear() {
    let g = cetric::gen::rmat_default(10, 9);
    let p = 8;
    let dg = DistGraph::new_balanced_vertices(&g, p);
    let max_entries = (0..p)
        .map(|r| dg.local(r).num_local_entries())
        .max()
        .unwrap();

    let ditric = count(&g, p, Algorithm::Ditric).unwrap();
    // DITRIC: peak buffer within a small factor of δ (=|E_i|/4) — linear
    assert!(
        ditric.stats.max_peak_buffered() <= max_entries,
        "DITRIC peak {} exceeds local input {}",
        ditric.stats.max_peak_buffered(),
        max_entries
    );

    let tric = count(&g, p, Algorithm::TricLike).unwrap();
    // TriC-like: peak buffer is the whole outgoing volume — superlinear in
    // the local input on this skewed graph
    assert!(
        tric.stats.max_peak_buffered() > max_entries,
        "TriC-like peak {} not superlinear (local input {})",
        tric.stats.max_peak_buffered(),
        max_entries
    );
}

#[test]
fn modeled_time_decreases_then_flattens_with_p() {
    // strong scaling on a mid-size instance: time at p=16 must be well
    // below p=2, and no catastrophic blow-up at p=32
    let g = cetric::gen::rgg2d_default(1 << 13, 11);
    let model = CostModel::supermuc();
    let t: Vec<f64> = [2usize, 16, 32]
        .iter()
        .map(|&p| {
            count(&g, p, Algorithm::Ditric)
                .unwrap()
                .modeled_time(&model)
        })
        .collect();
    assert!(t[1] < t[0] / 2.0, "no speedup: t2={} t16={}", t[0], t[1]);
    assert!(
        t[2] < t[0],
        "scaling wall at p=32: t2={} t32={}",
        t[0],
        t[2]
    );
}

#[test]
fn cloud_network_favours_cetric_supermuc_less_so() {
    // the §V-D/§V-E regime claim, as a relative statement: CETRIC's
    // advantage over DITRIC must be larger under the slow-network model
    let g = Dataset::Webbase2001.generate(1 << 12, 8);
    let p = 16;
    let d = count(&g, p, Algorithm::Ditric).unwrap();
    let c = count(&g, p, Algorithm::Cetric).unwrap();
    let fast = CostModel::supermuc();
    let slow = CostModel::cloud();
    let adv_fast = d.modeled_time(&fast) / c.modeled_time(&fast);
    let adv_slow = d.modeled_time(&slow) / c.modeled_time(&slow);
    assert!(
        adv_slow > adv_fast,
        "contraction advantage should grow on slow networks: fast {adv_fast:.3} slow {adv_slow:.3}"
    );
    assert!(
        adv_slow > 1.0,
        "CETRIC must win outright on the cloud model"
    );
}

#[test]
fn havoqgt_like_moves_wedge_volume() {
    // wedge-proportional messaging ≫ neighborhood messaging on skewed graphs
    let g = Dataset::Twitter.generate(1 << 11, 3);
    let p = 8;
    let ours = count(&g, p, Algorithm::Ditric).unwrap();
    let theirs = count(&g, p, Algorithm::HavoqgtLike).unwrap();
    assert_eq!(ours.triangles, theirs.triangles);
    assert!(
        theirs.stats.total_volume() > 2 * ours.stats.total_volume(),
        "HavoqGT-like volume {} !≫ DITRIC volume {}",
        theirs.stats.total_volume(),
        ours.stats.total_volume()
    );
}

#[test]
fn road_networks_tiny_communication() {
    // road family: cut and volume must be tiny relative to m
    let g = Dataset::RoadEurope.generate(1 << 12, 2);
    let r = count(&g, 8, Algorithm::Cetric).unwrap();
    let m_words = 2 * g.num_edges();
    assert!(
        global_volume(&r) < m_words / 4,
        "road global volume {} not ≪ input {}",
        global_volume(&r),
        m_words
    );
}

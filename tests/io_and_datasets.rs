//! I/O round trips and the dataset proxy catalogue.

use cetric::core::seq;
use cetric::graph::io;
use cetric::prelude::*;

#[test]
fn text_file_roundtrip_preserves_counts() {
    let g = cetric::gen::gnm(300, 2400, 5);
    let path = std::env::temp_dir().join("tricount_test_edges.txt");
    {
        let f = std::fs::File::create(&path).unwrap();
        io::write_text_edges(f, &g.to_edge_list()).unwrap();
    }
    let g2 = io::load_graph(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(g2.num_edges(), g.num_edges());
    assert_eq!(
        seq::compact_forward(&g2).triangles,
        seq::compact_forward(&g).triangles
    );
}

#[test]
fn binary_file_roundtrip_is_exact() {
    let g = Dataset::Orkut.generate(512, 9);
    let path = std::env::temp_dir().join("tricount_test_graph.bin");
    {
        let f = std::fs::File::create(&path).unwrap();
        io::write_binary(f, &g).unwrap();
    }
    let g2 = io::load_graph(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(g, g2);
}

#[test]
fn snap_style_comments_are_tolerated() {
    let data = "# Directed graph (each unordered pair of nodes is saved once)\n\
                # FromNodeId\tToNodeId\n\
                0\t1\n1\t2\n2\t0\n";
    let mut el = io::read_text_edges(data.as_bytes()).unwrap();
    el.canonicalize();
    let g = Csr::from_edges(3, &el);
    assert_eq!(seq::compact_forward(&g).triangles, 1);
}

#[test]
fn proxy_families_have_table1_character() {
    // Table I families, qualitatively: social graphs are wedge-heavy and
    // skewed, web graphs are triangle-dense, road networks are
    // triangle-sparse with low uniform degree.
    let n = 2048u64;
    let social = Dataset::Orkut.generate(n, 1);
    let web = Dataset::Uk2007.generate(n, 1);
    let road = Dataset::RoadUsa.generate(n, 1);

    let tri = |g: &Csr| seq::compact_forward(g).triangles;
    let per_edge = |g: &Csr| tri(g) as f64 / g.num_edges() as f64;

    // web proxy: extreme clustering → far more triangles per edge than road
    assert!(per_edge(&web) > 20.0 * per_edge(&road).max(1e-9));
    // road proxy: triangles per edge well below 0.1 (paper: 697k tri / 22M m)
    assert!(per_edge(&road) < 0.1, "road per-edge {}", per_edge(&road));
    // social proxy: wedges per vertex far above road's (hubs)
    assert!(
        social.num_wedges() / social.num_vertices()
            > 20 * (road.num_wedges() / road.num_vertices()).max(1)
    );
}

#[test]
fn paper_stats_have_expected_magnitudes() {
    // spot-check the transcription of Table I
    let lj = Dataset::LiveJournal.paper_stats();
    assert_eq!(lj.n, 5_000_000);
    assert_eq!(lj.triangles, 286_000_000);
    let uk = Dataset::Uk2007.paper_stats();
    assert_eq!(uk.m, 3_302_000_000);
    let usa = Dataset::RoadUsa.paper_stats();
    assert_eq!(usa.triangles, 438_804);
    // ordering of the table rows
    let names: Vec<&str> = Dataset::all()
        .iter()
        .map(|d| d.paper_stats().name)
        .collect();
    assert_eq!(
        names,
        vec![
            "live-journal",
            "orkut",
            "twitter",
            "friendster",
            "uk-2007-05",
            "webbase-2001",
            "europe",
            "usa"
        ]
    );
}

#[test]
fn generators_scale_with_n() {
    for fam in Family::all() {
        let small = fam.generate(256, 4);
        let large = fam.generate(1024, 4);
        assert!(
            large.num_edges() > 2 * small.num_edges(),
            "{fam:?}: {} !> 2×{}",
            large.num_edges(),
            small.num_edges()
        );
    }
}

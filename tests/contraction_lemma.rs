//! Lemma 1 of the paper (§IV-C): a vertex set `{u, v, w}` induces a triangle
//! in the cut graph `∂G` **iff** it is a type-3 triangle of `G` (all three
//! corners on distinct PEs). This is the fact that makes CETRIC's
//! contraction correct; we verify it graph-theoretically, independent of the
//! distributed implementation, plus the supporting type-classification
//! identities.

use cetric::core::seq;
use cetric::prelude::*;
use tricount_graph::ordering::OrderingKind;

/// Classifies every triangle of `g` by the number of distinct owner ranks.
/// Returns (type1, type2, type3) counts.
fn classify(g: &Csr, part: &Partition) -> (u64, u64, u64) {
    let mut t1 = 0u64;
    let mut t2 = 0u64;
    let mut t3 = 0u64;
    for (a, b, c) in seq::enumerate_triangles(g, OrderingKind::Id) {
        let mut ranks = [part.rank_of(a), part.rank_of(b), part.rank_of(c)];
        ranks.sort_unstable();
        let distinct = 1 + usize::from(ranks[0] != ranks[1]) + usize::from(ranks[1] != ranks[2]);
        match distinct {
            1 => t1 += 1,
            2 => t2 += 1,
            _ => t3 += 1,
        }
    }
    (t1, t2, t3)
}

/// Builds the cut graph ∂G: only edges whose endpoints live on different PEs.
fn cut_graph(g: &Csr, part: &Partition) -> Csr {
    let el: EdgeList = g
        .edges()
        .filter(|&(u, v)| part.rank_of(u) != part.rank_of(v))
        .collect();
    Csr::from_edges(g.num_vertices(), &el)
}

fn check_lemma(g: &Csr, p: usize) {
    let part = Partition::balanced_vertices(g.num_vertices(), p);
    let (t1, t2, t3) = classify(g, &part);
    assert_eq!(
        t1 + t2 + t3,
        seq::compact_forward(g).triangles,
        "classification must cover all triangles"
    );
    let cut = cut_graph(g, &part);
    let cut_triangles = seq::compact_forward(&cut).triangles;
    assert_eq!(cut_triangles, t3, "Lemma 1 violated for p={p}");
}

#[test]
fn lemma1_on_synthetic_families() {
    for fam in Family::all() {
        let g = fam.generate(512, 7);
        for p in [2usize, 3, 5, 8, 16] {
            check_lemma(&g, p);
        }
    }
}

#[test]
fn lemma1_on_dataset_proxies() {
    for ds in Dataset::all() {
        let g = ds.generate(400, 3);
        check_lemma(&g, 6);
    }
}

#[test]
fn lemma1_extreme_partitions() {
    let g = cetric::gen::gnm(120, 1200, 5);
    // p = 1: everything type 1, cut graph empty
    let part = Partition::balanced_vertices(g.num_vertices(), 1);
    let (t1, t2, t3) = classify(&g, &part);
    assert_eq!(t2 + t3, 0);
    assert_eq!(t1, seq::compact_forward(&g).triangles);
    assert_eq!(cut_graph(&g, &part).num_edges(), 0);
    // p = n: every vertex its own PE → everything type 3, ∂G = G
    check_lemma(&g, 120);
    let part_n = Partition::balanced_vertices(g.num_vertices(), 120);
    let (t1, t2, t3) = classify(&g, &part_n);
    assert_eq!(t1 + t2, 0);
    assert_eq!(t3, seq::compact_forward(&g).triangles);
}

#[test]
fn local_phase_share_matches_type_counts() {
    // CETRIC's global-phase communication carries only contracted
    // neighborhoods; on a graph with NO type-3 triangles the global phase
    // must still run (cut edges exist) but contribute zero triangles —
    // total equals type1+type2 found locally.
    // Construct: two cliques on separate PEs joined by a matching (cut
    // edges that close no triangle).
    let mut el = EdgeList::new();
    for i in 0..6u64 {
        for j in (i + 1)..6 {
            el.push(i, j); // clique on PE0 (vertices 0..6)
        }
    }
    for i in 6..12u64 {
        for j in (i + 1)..12 {
            el.push(i, j); // clique on PE1 (vertices 6..12)
        }
    }
    el.push(0, 6); // matching edges
    el.push(1, 7);
    el.canonicalize();
    let g = Csr::from_edges(12, &el);
    let part = Partition::balanced_vertices(12, 2);
    let (t1, t2, t3) = classify(&g, &part);
    assert_eq!((t1, t2, t3), (40, 0, 0)); // two K6 = 2·20 triangles
    let r = count(&g, 2, Algorithm::Cetric).unwrap();
    assert_eq!(r.triangles, 40);
    // cut graph of a matching is triangle-free
    assert_eq!(seq::compact_forward(&cut_graph(&g, &part)).triangles, 0);
}

#[test]
fn contracted_neighborhoods_are_exactly_oriented_cut_edges() {
    let g = cetric::gen::rgg2d_default(400, 9);
    let mut dg = DistGraph::new_balanced_vertices(&g, 4);
    dg.fill_ghost_degrees_centrally();
    for r in 0..4 {
        let o = dg.local(r).orient(OrderingKind::Degree, true);
        let c = o.contracted();
        // every contracted entry is a cut edge oriented outward
        let range = dg.partition().range(r);
        for (v, a) in c.nonempty() {
            assert!(range.contains(&v));
            for &u in a {
                assert!(!range.contains(&u), "contracted entry ({v},{u}) not cut");
                assert!(g.has_edge(v, u), "contracted entry not an edge");
            }
        }
        // and their count matches the oriented cut edges of the local graph
        let oriented_cut: u64 = range
            .clone()
            .map(|v| {
                o.a_owned(v)
                    .iter()
                    .filter(|&&u| !range.contains(&u))
                    .count() as u64
            })
            .sum();
        assert_eq!(c.num_entries(), oriented_cut);
    }
}

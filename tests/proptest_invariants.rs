//! Property-based tests: random graphs, partitions and parameters must
//! uphold the core invariants — all algorithms agree with brute force,
//! orientation is a triangle-preserving DAG, partitions cover the id space,
//! routing delivers exactly once, and the Bloom count never underestimates.

use cetric::core::dist::approx::{approx, ApproxConfig, FilterKind};
use cetric::core::seq;
use cetric::prelude::*;
use proptest::prelude::*;
use tricount_graph::ordering::{orient, OrderingKind};

/// Strategy: a random simple graph as a canonical edge list over `n ≤ 24`
/// vertices.
fn arb_graph() -> impl Strategy<Value = Csr> {
    (
        2u64..24,
        proptest::collection::vec((0u64..24, 0u64..24), 0..80),
    )
        .prop_map(|(n, pairs)| {
            let mut el = EdgeList::new();
            for (u, v) in pairs {
                let (u, v) = (u % n, v % n);
                if u != v {
                    el.push(u, v);
                }
            }
            el.canonicalize();
            Csr::from_edges(n, &el)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_algorithms_agree_with_brute_force(g in arb_graph(), p in 1usize..6) {
        let truth = seq::brute_force_count(&g);
        prop_assert_eq!(seq::compact_forward(&g).triangles, truth);
        prop_assert_eq!(seq::edge_iterator(&g, OrderingKind::Id).triangles, truth);
        for alg in Algorithm::all() {
            let r = count(&g, p, alg).unwrap();
            prop_assert_eq!(r.triangles, truth, "{} p={}", alg.name(), p);
        }
    }

    #[test]
    fn orientation_is_antisymmetric_and_complete(g in arb_graph()) {
        for kind in [OrderingKind::Degree, OrderingKind::Id] {
            let o = orient(&g, kind);
            prop_assert_eq!(o.num_directed_edges(), g.num_edges());
            for (u, v) in o.directed_edges() {
                prop_assert!(!o.neighbors(v).contains(&u));
                prop_assert!(g.has_edge(u, v));
            }
        }
    }

    #[test]
    fn per_vertex_counts_are_consistent(g in arb_graph()) {
        let delta = seq::per_vertex_counts(&g, OrderingKind::Degree);
        let total = seq::brute_force_count(&g);
        prop_assert_eq!(delta.iter().sum::<u64>(), 3 * total);
        let lcc = seq::local_clustering_coefficients(&g, OrderingKind::Degree);
        for (v, &x) in lcc.iter().enumerate() {
            prop_assert!((0.0..=1.0).contains(&x), "lcc[{}] = {}", v, x);
        }
    }

    #[test]
    fn distributed_lcc_matches_sequential(g in arb_graph(), p in 1usize..5) {
        let truth = seq::per_vertex_counts(&g, OrderingKind::Degree);
        let r = cetric::core::dist::lcc::lcc(&g, p, &DistConfig::default());
        prop_assert_eq!(r.per_vertex, truth);
    }

    #[test]
    fn partition_covers_and_sorts(n in 0u64..1000, p in 1usize..20) {
        let part = Partition::balanced_vertices(n, p);
        prop_assert_eq!(part.num_vertices(), n);
        let mut covered = 0u64;
        for r in 0..p {
            let range = part.range(r);
            covered += range.end - range.start;
            for v in range {
                prop_assert_eq!(part.rank_of(v), r);
            }
        }
        prop_assert_eq!(covered, n);
    }

    #[test]
    fn grid_routes_always_terminate_at_destination(p in 1usize..200) {
        let grid = cetric::comm::Grid::new(p);
        for from in 0..p {
            // sample a few destinations to keep the case count bounded
            for to in [0, p / 3, p / 2, p.saturating_sub(1)] {
                if from == to { continue; }
                let route = grid.route(from, to);
                prop_assert_eq!(*route.last().unwrap(), to);
                prop_assert!(route.len() <= 2);
            }
        }
    }

    #[test]
    fn bloom_raw_count_never_underestimates(g in arb_graph(), bits in 2.0f64..16.0) {
        let truth = seq::brute_force_count(&g);
        let r = approx(&g, 3, &DistConfig::default(), &ApproxConfig {
            bits_per_key: bits,
            filter: FilterKind::Bloom,
        });
        // no false negatives: exact local + raw type-3 ≥ truth
        prop_assert!(r.exact_local + r.type3_raw >= truth,
            "raw {} + {} < {}", r.exact_local, r.type3_raw, truth);
    }

    #[test]
    fn edge_balanced_partitions_count_correctly(g in arb_graph(), p in 1usize..5) {
        let truth = seq::brute_force_count(&g);
        let dg = DistGraph::new_balanced_edges(&g, p);
        let r = cetric::core::run_on_default(dg, Algorithm::Cetric, &Algorithm::Cetric.config()).unwrap();
        prop_assert_eq!(r.triangles, truth);
    }

    #[test]
    fn wedges_upper_bound_triangles(g in arb_graph()) {
        // every triangle closes three wedges
        prop_assert!(3 * seq::brute_force_count(&g) <= g.num_wedges());
    }
}

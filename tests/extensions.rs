//! Integration coverage of the extension systems: compressed graphs,
//! distributed enumeration, sampling estimators, the 2D matrix baseline,
//! timed runs and the communication-free generation pipeline — all checked
//! against each other end to end.

use cetric::core::dist::{enumerate, matrix2d};
use cetric::core::{sampling, seq};
use cetric::gen::distributed::{rgg2d_distributed, RggLayout};
use cetric::graph::compressed::CompressedCsr;
use cetric::prelude::*;

#[test]
fn five_independent_counters_agree() {
    // sequential, compressed-sequential, CETRIC, 2D SpGEMM, enumeration —
    // five implementations sharing almost no code must produce one number
    for (g, p2d) in [
        (cetric::gen::gnm(400, 4000, 9), 4usize),
        (cetric::gen::rmat_default(9, 4), 16),
        (Dataset::Uk2007.generate(512, 2), 9),
    ] {
        let a = seq::compact_forward(&g).triangles;
        let b = seq::compact_forward_compressed(&CompressedCsr::from_csr(&g)).triangles;
        let c = count(&g, 6, Algorithm::Cetric).unwrap().triangles;
        let d = matrix2d::count_matrix2d(&g, p2d).triangles;
        let e = enumerate::enumerate(&g, 5, &DistConfig::default()).len() as u64;
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert_eq!(a, d);
        assert_eq!(a, e);
    }
}

#[test]
fn compressed_graphs_save_space_on_web_proxies() {
    // web crawls are the canonical compression win (host-local ids)
    let g = Dataset::Uk2007.generate(2048, 7);
    let c = CompressedCsr::from_csr(&g);
    let ratio = c.uncompressed_bytes() as f64 / c.data_bytes() as f64;
    assert!(ratio > 3.0, "web proxy should compress well: {ratio:.2}x");
    assert_eq!(c.to_csr(), g);
}

#[test]
fn sampling_estimators_bracket_the_truth() {
    let g = cetric::gen::rmat_default(10, 8);
    let truth = seq::compact_forward(&g).triangles as f64;
    // average over seeds: both estimators are (asymptotically) unbiased
    let mut doulion_mean = 0.0;
    let mut colorful_mean = 0.0;
    let runs = 6;
    for s in 0..runs {
        doulion_mean +=
            sampling::doulion_estimate(&g, 4, Algorithm::Ditric, 0.6, s).unwrap() / runs as f64;
        colorful_mean +=
            sampling::colorful_estimate(&g, 4, Algorithm::Ditric, 2, s).unwrap() / runs as f64;
    }
    assert!(
        (doulion_mean - truth).abs() / truth < 0.25,
        "DOULION {doulion_mean} vs {truth}"
    );
    assert!(
        (colorful_mean - truth).abs() / truth < 0.25,
        "colorful {colorful_mean} vs {truth}"
    );
    // and sparsification genuinely shrinks the communicated graph
    let sparse = sampling::doulion_sparsify(&g, 0.25, 1);
    assert!(sparse.num_edges() < g.num_edges() / 2);
}

#[test]
fn communication_free_generation_feeds_the_counter() {
    // per-rank generation + CETRIC without any global graph; verified
    // against central assembly of the identical per-cell streams
    let layout = RggLayout::new(1500, 16.0, 33);
    let p = 6;
    let cfg = DistConfig::default();
    let out = cetric::comm::run(p, |ctx| {
        let (_part, lg) = rgg2d_distributed(&layout, p, ctx.rank(), 33);
        cetric::core::dist::cetric::run_rank(ctx, lg, &cfg)
    });
    let distributed_count = out.results[0];
    assert!(out.results.iter().all(|&t| t == distributed_count));

    // central reference from the same deterministic layout
    let mut el = EdgeList::new();
    let mut n = 0;
    for rank in 0..p {
        let (part, lg) = rgg2d_distributed(&layout, p, rank, 33);
        n = part.num_vertices();
        for v in lg.owned_vertices() {
            for &u in lg.neighbors(v) {
                el.push(v, u);
            }
        }
    }
    el.canonicalize();
    let g = Csr::from_edges(n, &el);
    assert_eq!(distributed_count, seq::compact_forward(&g).triangles);
}

#[test]
fn timed_and_untimed_runs_count_identically() {
    let g = Dataset::Orkut.generate(1024, 5);
    let cost = CostModel::cloud();
    for alg in [Algorithm::Ditric2, Algorithm::Cetric] {
        let dg = DistGraph::new_balanced_vertices(&g, 8);
        let timed = cetric::core::dist::run_on_timed(dg, alg, &alg.config(), cost).unwrap();
        let untimed = count(&g, 8, alg).unwrap();
        assert_eq!(timed.triangles, untimed.triangles);
        assert!(timed.stats.makespan() > 0.0);
        // counters identical: timing must not change the protocol
        assert_eq!(timed.stats.total_volume(), untimed.stats.total_volume());
        assert_eq!(timed.stats.total_work(), untimed.stats.total_work());
    }
}

#[test]
fn matrix2d_volume_wall_vs_cetric_on_local_graph() {
    // on a local (web-like) graph the contrast is starkest: CETRIC ships
    // only the cut, the 2D scheme replicates blocks regardless of locality
    let g = Dataset::Webbase2001.generate(2048, 3);
    let c16 = count(&g, 16, Algorithm::Cetric).unwrap();
    let m16 = matrix2d::count_matrix2d(&g, 16);
    assert_eq!(c16.triangles, m16.triangles);
    assert!(
        m16.stats.total_volume() > 3 * c16.stats.total_volume(),
        "2D volume {} should dwarf CETRIC's {} on a local graph",
        m16.stats.total_volume(),
        c16.stats.total_volume()
    );
}

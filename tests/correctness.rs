//! End-to-end correctness: every distributed variant must produce the exact
//! sequential count on every graph family, partitioning, and PE count.

use cetric::core::dist::{approx, hybrid, lcc};
use cetric::core::seq;
use cetric::prelude::*;

fn check(g: &Csr, ps: &[usize]) {
    let truth = seq::compact_forward(g).triangles;
    for &p in ps {
        for alg in Algorithm::all() {
            let r = count(g, p, alg).unwrap_or_else(|e| panic!("{alg:?} p={p}: {e}"));
            assert_eq!(r.triangles, truth, "{} p={p}", alg.name());
        }
    }
}

#[test]
fn families_medium_scale() {
    // moderately sized instances of each weak-scaling family
    for fam in Family::all() {
        let g = fam.generate(1 << 10, 99);
        check(&g, &[2, 6, 16]);
    }
}

#[test]
fn dataset_proxies_medium_scale() {
    for ds in Dataset::all() {
        let g = ds.generate(600, 21);
        check(&g, &[5, 9]);
    }
}

#[test]
fn many_pe_counts_on_one_graph() {
    let g = cetric::gen::gnm(512, 4096, 1234);
    check(&g, &[1, 2, 3, 4, 5, 7, 8, 11, 16, 23, 32]);
}

#[test]
fn high_locality_graph_many_pes() {
    let g = cetric::gen::rgg2d_default(1 << 11, 77);
    check(&g, &[8, 27]);
}

#[test]
fn custom_configs_still_correct() {
    let g = cetric::gen::rmat_default(9, 31);
    let truth = seq::compact_forward(&g).triangles;
    // sweep the aggregation threshold
    for factor in [0.01, 0.1, 1.0, 10.0] {
        let cfg = DistConfig {
            aggregation: Aggregation::Dynamic {
                delta_factor: factor,
            },
            ..DistConfig::default()
        };
        for alg in [Algorithm::Ditric, Algorithm::Cetric] {
            let r = count_with(&g, 6, alg, &cfg).unwrap();
            assert_eq!(r.triangles, truth, "{alg:?} delta_factor={factor}");
        }
    }
    // id ordering instead of degree ordering
    let cfg = DistConfig {
        ordering: OrderingKind::Id,
        ..DistConfig::default()
    };
    for alg in [Algorithm::Ditric, Algorithm::Cetric, Algorithm::HavoqgtLike] {
        let r = count_with(&g, 6, alg, &cfg).unwrap();
        assert_eq!(r.triangles, truth, "{alg:?} id-order");
    }
    // grid routing at awkward (non-square) PE counts
    for p in [3usize, 7, 13, 21] {
        let r = count(&g, p, Algorithm::Cetric2).unwrap();
        assert_eq!(r.triangles, truth, "CETRIC2 p={p}");
    }
}

#[test]
fn distributed_lcc_equals_sequential_on_every_family() {
    for fam in Family::all() {
        let g = fam.generate(512, 5);
        let truth = seq::per_vertex_counts(&g, OrderingKind::Degree);
        let r = lcc::lcc(&g, 7, &DistConfig::default());
        assert_eq!(r.per_vertex, truth, "{fam:?}");
    }
}

#[test]
fn hybrid_matches_flat_for_all_thread_counts() {
    let g = cetric::gen::rgg2d_default(1200, 3);
    let truth = seq::compact_forward(&g).triangles;
    for threads in [1usize, 2, 3, 4, 6, 12] {
        let r = hybrid::count_hybrid(&g, 12, threads, &DistConfig::default());
        assert_eq!(r.triangles, truth, "threads={threads}");
    }
}

#[test]
fn approx_beats_tolerance_on_all_families() {
    for fam in Family::all() {
        let g = fam.generate(1 << 10, 13);
        let truth = seq::compact_forward(&g).triangles as f64;
        if truth < 100.0 {
            continue; // relative error is meaningless on near-triangle-free graphs
        }
        let r = approx::approx(
            &g,
            6,
            &DistConfig::default(),
            &approx::ApproxConfig {
                bits_per_key: 12.0,
                filter: approx::FilterKind::Bloom,
            },
        );
        let rel = (r.estimate - truth).abs() / truth;
        assert!(rel < 0.08, "{fam:?}: estimate {} truth {truth}", r.estimate);
    }
}

#[test]
fn empty_and_degenerate_graphs() {
    // no vertices
    let g = Csr::from_edges(0, &EdgeList::new());
    assert_eq!(seq::compact_forward(&g).triangles, 0);
    // vertices but no edges
    let g = Csr::from_edges(10, &EdgeList::new());
    for alg in [Algorithm::Ditric, Algorithm::Cetric, Algorithm::TricLike] {
        assert_eq!(count(&g, 4, alg).unwrap().triangles, 0, "{alg:?}");
    }
    // single edge
    let mut el = EdgeList::new();
    el.push(0, 1);
    el.canonicalize();
    let g = Csr::from_edges(2, &el);
    for alg in Algorithm::all() {
        assert_eq!(count(&g, 2, alg).unwrap().triangles, 0, "{alg:?}");
    }
}

#[test]
fn results_identical_across_repeated_runs() {
    let g = cetric::gen::rhg_default(800, 17);
    for alg in [Algorithm::Ditric2, Algorithm::Cetric2] {
        let a = count(&g, 9, alg).unwrap();
        let b = count(&g, 9, alg).unwrap();
        assert_eq!(a.triangles, b.triangles);
        assert_eq!(a.stats.total_volume(), b.stats.total_volume());
        assert_eq!(a.stats.total_work(), b.stats.total_work());
    }
}

//! Profiling a distributed run end to end: record a trace of a timed
//! CETRIC count, print the per-phase modeled/wall breakdown, export a
//! deterministic Chrome-trace/Perfetto JSON timeline (one track per PE,
//! flow arrows for every message), and render the run's metrics in the
//! Prometheus text exposition format.
//!
//! Run with:
//! ```text
//! cargo run --release --example profile_run
//! ```
//!
//! Set `TRICOUNT_PROFILE_OUT=/some/dir` to keep the exported files (CI
//! uploads them as artifacts); otherwise they land in the temp directory.

use cetric::comm::SimOptions;
use cetric::obs;
use cetric::prelude::*;

fn main() {
    // 1. A seeded RGG2D instance over 16 PEs — the paper's geometric
    // workload, where CETRIC's cut contraction shines.
    let g = cetric::gen::rgg2d_default(4_000, 42);
    let p = 16;
    let alg = Algorithm::Cetric;
    let model = CostModel::supermuc();
    let dg = DistGraph::new_balanced_vertices(&g, p);
    let opts = SimOptions {
        timing: Some(model),
        record_trace: true,
        ..SimOptions::default()
    };
    let (r, trace) =
        cetric::core::dist::run_on(dg, alg, &alg.config(), &opts).expect("run succeeds");
    let trace = trace.expect("built with the trace feature");
    println!(
        "{} on {p} PEs: {} triangles, modeled {:.3} ms, makespan {:.3} ms",
        alg.name(),
        r.triangles,
        r.modeled_time(&model) * 1e3,
        r.stats.makespan() * 1e3
    );

    // 2. Terminal phase report: where modeled and wall time went, which PE
    // was the communication bottleneck, plus the recorded span summary.
    print!("{}", obs::phase_report(&r.stats, Some(&trace), &model));
    print!("{}", obs::span_summary(&trace));

    // 3. Chrome-trace export. Timestamps are reconstructed from
    // schedule-independent counters, so re-running this example always
    // produces byte-identical JSON. Every delivered message becomes a flow
    // arrow.
    let export = obs::export_run(&trace, &r.stats, &model);
    assert_eq!(
        export.flow_arrows,
        r.stats.totals().recv_messages,
        "one flow arrow per delivered message"
    );
    let dir = std::env::var("TRICOUNT_PROFILE_OUT")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| std::env::temp_dir());
    let trace_path = dir.join("profile_run.trace.json");
    std::fs::write(&trace_path, &export.json).expect("write chrome trace");
    println!(
        "chrome trace: {} ({} tracks, {} flow arrows; open in ui.perfetto.dev)",
        trace_path.display(),
        export.tracks,
        export.flow_arrows
    );

    // 4. Prometheus exposition of the same run: totals, per-phase modeled
    // seconds, message-size and queue-depth histograms.
    let reg = obs::run_metrics(&r.stats, &model, Some(&trace));
    let prom_path = dir.join("profile_run.prom");
    std::fs::write(&prom_path, reg.render()).expect("write exposition");
    let samples = obs::parse_exposition(&reg.render()).expect("exposition parses");
    println!(
        "prometheus exposition: {} ({} samples)",
        prom_path.display(),
        samples.len()
    );
}

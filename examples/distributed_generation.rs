//! The paper's weak-scaling workflow, end to end: KaGen-style
//! communication-free generation feeding the distributed counter — no
//! global graph is ever materialised. Every simulated PE generates exactly
//! its own slice of a random geometric graph (its cells plus a one-cell
//! halo, deterministic substreams) and runs CETRIC on it directly.
//!
//! Run with:
//! ```text
//! cargo run --release --example distributed_generation
//! ```

use cetric::comm;
use cetric::core::dist::cetric as cetric_alg;
use cetric::gen::distributed::{rgg2d_distributed, RggLayout};
use cetric::prelude::*;

fn main() {
    let seed = 42;
    let model = CostModel::supermuc();
    println!("weak scaling with communication-free generation (RGG2D, ~2^11 vertices/PE)\n");
    println!(
        "{:>4} {:>10} {:>10} {:>12} {:>14} {:>12}",
        "p", "n", "m(approx)", "triangles", "modeled time", "bottleneck"
    );
    for p in [1usize, 2, 4, 8, 16] {
        let n_total = (2048 * p) as u64;
        // The layout (cell geometry + per-cell counts) is O(#cells) and
        // computed redundantly by every PE — KaGen's communication-free
        // contract. Point coordinates are only materialised per PE.
        let layout = RggLayout::new(n_total, 24.0, seed);
        let cfg = DistConfig::default();
        let out = comm::run(p, |ctx| {
            // each rank generates ITS OWN subgraph — nothing global exists
            let (_part, lg) = rgg2d_distributed(&layout, p, ctx.rank(), seed);
            let m_local = lg.num_local_entries();
            ctx.end_phase("generate");
            let triangles = cetric_alg::run_rank(ctx, lg, &cfg);
            (triangles, m_local)
        });
        let triangles = out.results[0].0;
        let m_approx: u64 = out.results.iter().map(|(_, m)| m).sum::<u64>() / 2;
        // sanity: all ranks agree
        assert!(out.results.iter().all(|&(t, _)| t == triangles));
        println!(
            "{:>4} {:>10} {:>10} {:>12} {:>11.3} ms {:>12}",
            p,
            layout.num_vertices(),
            m_approx,
            triangles,
            out.stats.modeled_time(&model) * 1e3,
            out.stats.bottleneck_volume(),
        );
    }
    println!(
        "\nnote: each PE touched only its own cells plus a one-cell halo; the \
         \"generate\" phase is outside the counting phases, exactly like the \
         paper's exclusion of input loading."
    );
}

//! Verification layer: record a message trace of a real run, lint it
//! against the paper's protocol invariants, prove the count is
//! schedule-independent, and see the deadlock watchdog diagnose a stall.
//!
//! Run with:
//! ```text
//! cargo run --release --example verify_protocol
//! ```

use std::time::Duration;

use cetric::core::dist::run_on;
use cetric::core::seq;
use cetric::prelude::*;
use tricount_comm::{run_guarded, Ctx, SimOptions};
use tricount_graph::dist::DistGraph;
use tricount_verify::check_trace;
use tricount_verify::conformance::check_meters;
use tricount_verify::determinism::check_schedule_independence;

fn main() {
    let g = cetric::gen::rmat_default(10, 42);
    let truth = seq::compact_forward(&g).triangles;
    println!(
        "graph: n = {}, m = {}, {} triangles (sequential ground truth)\n",
        g.num_vertices(),
        g.num_edges(),
        truth
    );

    // 1. Record a trace of CETRIC² (grid-indirect routing) on 16 PEs and
    //    run the conformance linter over it: exactly-once delivery, the
    //    §IV-A memory bound, √p grid fan-out, epoch alignment, and the
    //    cost-model meters.
    let p = 16;
    let alg = Algorithm::Cetric2;
    let dg = DistGraph::new_balanced_vertices(&g, p);
    let (result, trace) =
        run_on(dg, alg, &alg.config(), &SimOptions::traced()).expect("run failed");
    assert_eq!(result.triangles, truth);
    let trace = trace.expect("built with the `trace` feature");
    let mut report = check_trace(&trace);
    report
        .violations
        .extend(check_meters(&trace, &result.stats));
    println!("{} on {p} PEs: {} triangles", alg.name(), result.triangles);
    print!("{report}");
    assert!(report.is_clean());

    // 2. Re-run under seeded schedule permutations: per-channel FIFO is
    //    guaranteed, cross-channel order is not — the count must not care.
    let seeds: Vec<u64> = (1..=8).collect();
    let g2 = g.clone();
    let verdict =
        check_schedule_independence(4, &seeds, &SimOptions::default(), move |ctx: &mut Ctx| {
            let dg = DistGraph::new_balanced_vertices(&g2, ctx.num_ranks());
            let lg = dg.into_locals().swap_remove(ctx.rank());
            cetric::core::dist::ditric::run_rank(ctx, lg, &Algorithm::Ditric.config())
        });
    match verdict {
        Ok(results) => println!(
            "\nDITRIC under {} perturbed schedules: all ranks agree ({} triangles)",
            seeds.len(),
            results[0]
        ),
        Err(divs) => {
            for d in &divs {
                println!("{d}");
            }
            panic!("schedule-dependent result!");
        }
    }

    // 3. The deadlock watchdog: a PE that skips a collective stalls the
    //    rest; instead of hanging, the run returns a wait-for report.
    let report = run_guarded(
        4,
        &SimOptions::default(),
        Duration::from_millis(250),
        |ctx: &mut Ctx| {
            if ctx.rank() != 0 {
                ctx.barrier();
            }
        },
    )
    .expect_err("this program deadlocks by construction");
    println!("\nwatchdog on a PE that skips a barrier:\n{report}");
}

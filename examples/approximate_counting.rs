//! Approximate triangle counting with AMQs (paper §IV-E).
//!
//! Instead of exact contracted neighborhoods, the global phase ships Bloom
//! filter sketches; the receiver counts positive membership queries and the
//! truthful estimator subtracts the expected false positives. This trades a
//! controllable error for communication volume — sweeping bits-per-key
//! makes the trade-off visible.
//!
//! Run with:
//! ```text
//! cargo run --release --example approximate_counting
//! ```

use cetric::core::dist::approx::{approx, ApproxConfig, FilterKind};
use cetric::prelude::*;

fn main() {
    // GNM: no locality → almost everything is a type-3 triangle, the case
    // the approximation targets.
    let n = 4_000u64;
    let g = cetric::gen::gnm(n, 16 * n, 11);
    let p = 8;
    let exact = count(&g, p, Algorithm::Cetric).unwrap();
    let exact_volume: u64 = exact
        .stats
        .phases
        .iter()
        .filter(|ph| ph.name == "global")
        .map(|ph| ph.total_volume())
        .sum();
    println!(
        "graph: n = {}, m = {} | exact count: {} (global-phase volume {} words)\n",
        g.num_vertices(),
        g.num_edges(),
        exact.triangles,
        exact_volume
    );

    for filter in [FilterKind::Bloom, FilterKind::SingleShot] {
        println!("--- {filter:?} filter ---");
        println!(
            "{:>12} {:>12} {:>12} {:>10} {:>14} {:>8}",
            "bits/key", "raw", "corrected", "err %", "volume(words)", "vs exact"
        );
        for bits in [2.0, 4.0, 8.0, 12.0, 16.0] {
            let r = approx(
                &g,
                p,
                &DistConfig::default(),
                &ApproxConfig {
                    bits_per_key: bits,
                    filter,
                },
            );
            let vol: u64 = r
                .stats
                .phases
                .iter()
                .filter(|ph| ph.name == "global")
                .map(|ph| ph.total_volume())
                .sum();
            let err = 100.0 * (r.estimate - exact.triangles as f64).abs() / exact.triangles as f64;
            println!(
                "{:>12} {:>12} {:>12.1} {:>9.2}% {:>14} {:>7.2}x",
                bits,
                r.exact_local + r.type3_raw,
                r.estimate,
                err,
                vol,
                vol as f64 / exact_volume as f64
            );
        }
        println!();
    }
    println!(
        "reading: raw counts always overestimate (no false negatives); the \
         truthful estimator removes the bias; fewer bits per key → less \
         volume, more variance."
    );
}

//! Query engine: load a graph once, then serve many triangle / LCC /
//! edge-support / approximate queries against the resident partitioned
//! state — the setup (partitioning, degree orientation, ghost exchange,
//! cut-graph contraction) runs exactly once at build time.
//!
//! Run with:
//! ```text
//! cargo run --release --example serve_queries
//! ```

use cetric::engine::{scripted_workload, Engine, EngineConfig, Query, QueryAnswer};
use cetric::prelude::*;

fn main() {
    // 1. Build the engine: one metered setup run prepares every rank.
    let g = cetric::gen::rgg2d_default(2_000, 42);
    let p = 4;
    let engine = Engine::build(&g, EngineConfig::new(p));
    println!(
        "resident: n = {}, m = {} on {p} PEs ({} setup msgs, {} setup words)",
        g.num_vertices(),
        g.num_edges(),
        engine.stats().setup_comm.sent_messages,
        engine.stats().setup_comm.sent_words,
    );

    // 2. Individual typed queries. The second identical query is a cache hit.
    for _ in 0..2 {
        let a = engine
            .query(Query::GlobalTriangles {
                algorithm: Algorithm::Cetric,
            })
            .expect("resident graph cannot OOM");
        if let QueryAnswer::Count(t) = a {
            println!("global triangles: {t}");
        }
    }
    println!(
        "after 2 identical queries: {} miss, {} hit",
        engine.stats().cache_misses,
        engine.stats().cache_hits
    );

    // 3. Per-vertex LCC for a handful of vertices (one shared full run).
    if let Ok(QueryAnswer::Lcc(pairs)) = engine.query(Query::VertexLcc {
        vertices: vec![0, 1, 2, 3],
    }) {
        for (v, lcc) in pairs {
            println!("lcc({v}) = {lcc:.4}");
        }
    }

    // 4. Approximate counting with a precision knob: the engine sizes the
    //    Bloom sketches from the requested relative error.
    for max_rel_error in [0.25, 0.01] {
        if let Ok(QueryAnswer::Approx {
            estimate,
            bits_per_key,
        }) = engine.query(Query::ApproxTriangles { max_rel_error })
        {
            println!("approx(err ≤ {max_rel_error}): {estimate:.0} ({bits_per_key} bits/key)");
        }
    }

    // 5. Batched serving: submit a mixed scripted workload, drain in ticks.
    //    Duplicate queries inside one batch share a single distributed run.
    let workload = scripted_workload(200, g.num_vertices(), 7);
    let mut answered = 0usize;
    for q in workload {
        loop {
            match engine.submit(q.clone()) {
                Ok(_) => break,
                Err(_) => answered += engine.tick().len(), // backpressure: drain
            }
        }
    }
    while engine.queue_depth() > 0 {
        answered += engine.tick().len();
    }

    // 6. The stats snapshot: epoching, admission and the residency proof.
    let s = engine.stats();
    println!(
        "\nserved {answered} batched queries in {} batches; hit rate {:.1}%",
        s.batches,
        s.cache_hit_rate() * 100.0
    );
    println!(
        "setup runs: {} | query preprocessing moved {} words (resident state keeps it at 0)",
        s.setup_runs, s.query_preprocessing_comm.sent_words
    );
    println!(
        "modeled query time {:.3} ms | wall {:.3} ms",
        s.modeled_seconds_total * 1e3,
        s.wall_seconds_total * 1e3
    );

    // 7. Epoching: advancing the epoch invalidates every cached answer.
    engine.advance_epoch();
    println!(
        "after advance_epoch: {} cached entries (epoch {})",
        engine.stats().cache_entries,
        engine.epoch()
    );
}

//! Social-network analysis with local clustering coefficients.
//!
//! The paper's introduction motivates LCC with spam detection (Becchetti et
//! al.): in social graphs, genuine accounts have clustered neighborhoods
//! (friends know each other → high LCC), while spam/bot accounts link to
//! many unrelated users (low LCC at high degree). This example computes the
//! LCC distribution of a Twitter-like proxy graph with the distributed
//! CETRIC pipeline and flags high-degree low-LCC outliers.
//!
//! Run with:
//! ```text
//! cargo run --release --example social_network_lcc
//! ```

use cetric::core::dist::lcc;
use cetric::prelude::*;

fn main() {
    let g = Dataset::Twitter.generate(1 << 13, 7);
    println!(
        "twitter-like proxy: n = {}, m = {}, max degree = {}",
        g.num_vertices(),
        g.num_edges(),
        g.degrees().iter().max().unwrap()
    );

    // Distributed per-vertex triangle counts + LCC on 8 simulated PEs.
    let result = lcc::lcc(&g, 8, &DistConfig::default());
    println!("total triangles: {}", result.triangles);

    // LCC histogram (the distribution Becchetti et al. analyse).
    let mut hist = [0usize; 10];
    let mut eligible = 0usize;
    for (v, &c) in result.lcc.iter().enumerate() {
        if g.degree(v as u64) >= 2 {
            eligible += 1;
            hist[((c * 10.0) as usize).min(9)] += 1;
        }
    }
    println!("\nLCC distribution over {eligible} vertices with degree >= 2:");
    for (i, &count) in hist.iter().enumerate() {
        let bar = "#".repeat((count * 60 / eligible.max(1)).max(usize::from(count > 0)));
        println!(
            "[{:.1},{:.1}) {:>7} {}",
            i as f64 / 10.0,
            (i + 1) as f64 / 10.0,
            count,
            bar
        );
    }

    // Flag suspicious accounts: top-degree vertices whose LCC is far below
    // the degree-weighted average.
    let mean_lcc: f64 = result.lcc.iter().sum::<f64>() / result.lcc.len() as f64;
    let mut ranked: Vec<u64> = g.vertices().collect();
    ranked.sort_by_key(|&v| std::cmp::Reverse(g.degree(v)));
    println!("\nmean LCC = {mean_lcc:.4}; high-degree accounts:");
    println!(
        "{:>10} {:>8} {:>10} {:>10}  verdict",
        "vertex", "degree", "triangles", "lcc"
    );
    for &v in ranked.iter().take(10) {
        let l = result.lcc[v as usize];
        let verdict = if l < mean_lcc * 0.5 {
            "SUSPICIOUS (hub with unclustered neighborhood)"
        } else {
            "ok"
        };
        println!(
            "{:>10} {:>8} {:>10} {:>10.4}  {}",
            v,
            g.degree(v),
            result.per_vertex[v as usize],
            l,
            verdict
        );
    }

    // The communication bill for the whole analysis:
    let model = CostModel::supermuc();
    println!(
        "\ncommunication: {} messages, {} words; modeled time {:.3} ms on 8 PEs",
        result.stats.total_messages(),
        result.stats.total_volume(),
        result.stats.modeled_time(&model) * 1e3
    );
}

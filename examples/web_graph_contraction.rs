//! When does CETRIC's contraction pay off? — the paper's network-speed
//! trade-off, §V-D/§V-E.
//!
//! The paper's headline surprise: on SuperMUC-NG's fast interconnect, the
//! *local work* dominates, so DITRIC (no contraction, less local work) can
//! beat CETRIC even though CETRIC moves up to 4× fewer bytes. On slower
//! networks ("large cloud computing environments") the prediction reverses.
//! This example reproduces both regimes on a web-graph proxy by pricing the
//! *same* execution traces with two cost models.
//!
//! Run with:
//! ```text
//! cargo run --release --example web_graph_contraction
//! ```

use cetric::prelude::*;

fn main() {
    // webbase-2001 proxy: sparse web graph with strong id locality — the
    // instance where the paper sees contraction halve the global phase.
    let g = Dataset::Webbase2001.generate(1 << 13, 3);
    println!(
        "webbase-like proxy: n = {}, m = {}",
        g.num_vertices(),
        g.num_edges()
    );

    let p = 16;
    let ditric = count(&g, p, Algorithm::Ditric).unwrap();
    let cetric = count(&g, p, Algorithm::Cetric).unwrap();
    assert_eq!(ditric.triangles, cetric.triangles);
    println!("triangles: {} (both algorithms agree)\n", ditric.triangles);

    let volume = |r: &CountResult, phase: &str| -> u64 {
        r.stats
            .phases
            .iter()
            .filter(|ph| ph.name == phase)
            .map(|ph| ph.total_volume())
            .sum()
    };
    let work = |r: &CountResult| r.stats.total_work();

    println!(
        "{:<10} {:>16} {:>16} {:>14}",
        "", "global volume", "local work", "messages"
    );
    println!(
        "{:<10} {:>16} {:>16} {:>14}",
        "DITRIC",
        volume(&ditric, "global"),
        work(&ditric),
        ditric.stats.total_messages()
    );
    println!(
        "{:<10} {:>16} {:>16} {:>14}",
        "CETRIC",
        volume(&cetric, "global"),
        work(&cetric),
        cetric.stats.total_messages()
    );
    println!(
        "\ncontraction cuts global volume by {:.2}x, costs {:.2}x local work",
        volume(&ditric, "global") as f64 / volume(&cetric, "global").max(1) as f64,
        work(&cetric) as f64 / work(&ditric).max(1) as f64,
    );

    // Price the same traces under both network regimes.
    for (label, model) in [
        (
            "SuperMUC-like (alpha=2us, 100Gbit/s)",
            CostModel::supermuc(),
        ),
        ("cloud-like    (alpha=50us, 10Gbit/s)", CostModel::cloud()),
    ] {
        let td = ditric.modeled_time(&model) * 1e3;
        let tc = cetric.modeled_time(&model) * 1e3;
        let winner = if td <= tc { "DITRIC" } else { "CETRIC" };
        println!("\n[{label}]\n  DITRIC {td:>9.3} ms | CETRIC {tc:>9.3} ms  ->  {winner} wins");
    }
    println!(
        "\n(the paper, §V-E: \"We still expect our contraction-based algorithm \
         variant to outperform DITRIC on a system with slower network \
         interconnects. This may for example be the case in large cloud \
         computing environments.\")"
    );
}

//! Quickstart: count triangles sequentially and on a simulated
//! distributed-memory machine, and read the communication statistics.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use cetric::core::seq;
use cetric::prelude::*;

fn main() {
    // 1. Get a graph. Generators are deterministic: same seed → same graph.
    //    (Alternatively: cetric::graph::io::load_graph("my_edges.txt").)
    let n = 10_000;
    let g = cetric::gen::rgg2d_default(n, 42);
    println!(
        "graph: n = {}, m = {}, wedges = {}",
        g.num_vertices(),
        g.num_edges(),
        g.num_wedges()
    );

    // 2. Sequential baseline: COMPACT-FORWARD (degree-ordered EDGEITERATOR).
    let s = seq::compact_forward(&g);
    println!(
        "sequential: {} triangles ({} intersection ops)",
        s.triangles, s.ops
    );

    // 3. Distributed: CETRIC on 8 simulated PEs. The graph is 1D-partitioned
    //    by vertex id; each PE runs as a thread; every message is metered.
    let p = 8;
    let r = count(&g, p, Algorithm::Cetric).expect("in-memory run cannot OOM");
    assert_eq!(r.triangles, s.triangles);
    println!("\nCETRIC on {p} PEs: {} triangles", r.triangles);

    // 4. Inspect the per-phase statistics the paper's evaluation plots.
    let model = CostModel::supermuc();
    println!(
        "{:<15} {:>12} {:>12} {:>14} {:>12}",
        "phase", "msgs", "words", "work(ops)", "time(model)"
    );
    for ph in &r.stats.phases {
        println!(
            "{:<15} {:>12} {:>12} {:>14} {:>9.3} ms",
            ph.name,
            ph.per_rank.iter().map(|c| c.sent_messages).sum::<u64>(),
            ph.total_volume(),
            ph.total_work(),
            ph.modeled_time(&model) * 1e3
        );
    }
    println!(
        "total modeled time: {:.3} ms | bottleneck volume: {} words | max msgs/PE: {}",
        r.modeled_time(&model) * 1e3,
        r.stats.bottleneck_volume(),
        r.stats.max_sent_messages()
    );

    // 5. Compare algorithm variants on the same graph.
    println!(
        "\n{:<22} {:>10} {:>14} {:>12}",
        "algorithm", "msgs", "volume(words)", "time(model)"
    );
    for alg in Algorithm::all() {
        match count(&g, p, alg) {
            Ok(r) => println!(
                "{:<22} {:>10} {:>14} {:>9.3} ms",
                alg.name(),
                r.stats.total_messages(),
                r.stats.total_volume(),
                r.modeled_time(&model) * 1e3
            ),
            Err(e) => println!("{:<22} failed: {e}", alg.name()),
        }
    }
}

//! "Using a sledgehammer to crack a nut": triangle counting on road
//! networks (paper §V-E, last paragraph).
//!
//! Road networks have tiny cuts and almost no triangles; the point of the
//! paper's road experiments is not speed but showing that the algorithms
//! "do not hit a scaling wall, even on small inputs". This example runs a
//! strong-scaling sweep on a Europe-like road proxy and prints time,
//! message and volume curves; TriC-like's single-batch communication is
//! initially competitive (tiny volume) but its message count explodes with
//! p — the crossover the paper reports.
//!
//! Run with:
//! ```text
//! cargo run --release --example road_network_scaling
//! ```

use cetric::prelude::*;

fn main() {
    let g = Dataset::RoadEurope.generate(1 << 14, 5);
    let seq = cetric::core::seq::compact_forward(&g);
    println!(
        "europe-like road proxy: n = {}, m = {}, triangles = {}\n",
        g.num_vertices(),
        g.num_edges(),
        seq.triangles
    );

    let model = CostModel::supermuc();
    let algs = [
        Algorithm::Ditric,
        Algorithm::Ditric2,
        Algorithm::Cetric,
        Algorithm::TricLike,
    ];
    print!("{:>5}", "p");
    for a in algs {
        print!(" | {:>22}", a.name());
    }
    println!("\n{:>5} | modeled ms / msgs / bottleneck words", "");
    for p in [2usize, 4, 8, 16, 32] {
        print!("{p:>5}");
        for alg in algs {
            match count(&g, p, alg) {
                Ok(r) => {
                    assert_eq!(r.triangles, seq.triangles, "{alg:?} p={p}");
                    print!(
                        " | {:>8.3} {:>6} {:>6}",
                        r.modeled_time(&model) * 1e3,
                        r.stats.max_sent_messages(),
                        r.stats.bottleneck_volume()
                    );
                }
                Err(e) => print!(" | {:>22}", format!("OOM: {e}")),
            }
        }
        println!();
    }
    println!(
        "\nreading: tiny cuts keep every algorithm cheap; no variant hits a \
         scaling wall, and indirect routing only matters once p is large."
    );
}

//! Dynamic graphs: stream batched edge insertions and deletions through a
//! resident engine, maintaining the global triangle count incrementally —
//! each batch is routed to its owning PEs, the exact triangle delta is
//! counted as distributed intersections with same-batch corrections, and
//! per-PE adjacency overlays are compacted back into the prepared state
//! once they grow past a configurable fraction of the base.
//!
//! Run with:
//! ```text
//! cargo run --release --example dynamic_updates
//! ```

use cetric::delta::random_batch;
use cetric::engine::{Engine, EngineConfig};
use cetric::prelude::*;

fn main() {
    // 1. Build the engine once; the baseline count seeds the resident
    //    triangle count that apply_updates maintains from here on.
    let g = cetric::gen::rgg2d_default(3_000, 42);
    let p = 4;
    let mut cfg = EngineConfig::new(p);
    cfg.compaction_fraction = 0.05; // fold overlays at 5% of the base
    let engine = Engine::build(&g, cfg);
    println!(
        "resident: n = {}, m = {} on {p} PEs, {} triangles",
        g.num_vertices(),
        g.num_edges(),
        engine.resident_triangles()
    );

    // 2. A hand-written batch: close one wedge, drop one edge. Inserting a
    //    present edge or deleting an absent one is a counted no-op.
    let mut batch = UpdateBatch::new();
    let hub = (0..g.num_vertices())
        .max_by_key(|&v| g.degree(v))
        .expect("non-empty graph");
    let (a, b) = (g.neighbors(hub)[0], g.neighbors(hub)[1]);
    batch.insert(a, b); // closes the wedge a–hub–b (if absent)
    batch.delete(hub, a);
    let receipt = engine.apply_updates(&batch).expect("ids are in range");
    println!(
        "hand batch: {} ins, {} del, {} noop; triangles {} -> {} ({:+})",
        receipt.inserted,
        receipt.deleted,
        receipt.noops,
        receipt.triangles_before,
        receipt.triangles_after,
        receipt.delta()
    );

    // 3. A stream of random mixed batches. The receipt's comm counters show
    //    each increment moves a tiny fraction of a rebuild's volume.
    let build_words = {
        let s = engine.setup_stats().totals();
        let b = engine.baseline_stats().totals();
        s.sent_words + s.coll_word_units + b.sent_words + b.coll_word_units
    };
    for round in 0..5u64 {
        let batch = random_batch(&g, 20, 100 + round);
        let r = engine.apply_updates(&batch).expect("ids are in range");
        let words = r.comm.sent_words + r.comm.coll_word_units;
        println!(
            "round {round}: {:+} triangles, {words} words ({:.1}% of build){}",
            r.delta(),
            100.0 * words as f64 / build_words as f64,
            if r.compacted { ", compacted" } else { "" }
        );
    }

    // 4. Queries see the updated graph (a tick compacts pending overlays
    //    first), and the incremental count matches the full recount.
    let answer = engine
        .query(Query::GlobalTriangles {
            algorithm: Algorithm::Cetric,
        })
        .expect("resident graph cannot OOM");
    if let QueryAnswer::Count(t) = answer {
        assert_eq!(t, engine.resident_triangles());
        println!("fresh distributed recount agrees: {t} triangles");
    }

    // 5. The text format round-trips through the same path as the CLI's
    //    `tricount update --batch FILE`.
    let batches = parse_batches("+ 0 1\n+ 1 2\n+ 0 2\n\n- 0 1\n").expect("well-formed");
    for b in &batches {
        engine.apply_updates(b).expect("ids are in range");
    }
    let s = engine.stats();
    println!(
        "total: {} batches applied, {} ins / {} del / {} noop, {} compaction(s)",
        s.updates_applied, s.edges_inserted, s.edges_deleted, s.update_noops, s.compactions
    );
}
